#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ccpr::util {
namespace {

TEST(SplitMix64Test, KnownSequenceIsStable) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1'000'000'007ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowCoversSmallRange) {
  Rng rng(11);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 5000; ++i) ++seen[rng.below(5)];
  for (int count : seen) EXPECT_GT(count, 700);  // ~1000 expected each
}

TEST(RngTest, RangeInclusiveBounds) {
  Rng rng(13);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, Uniform01InHalfOpenUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Rng rng(19);
  double sum = 0.0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng rng(29);
  int hits = 0;
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(31);
  double sum = 0.0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(50.0);
  EXPECT_NEAR(sum / kN, 50.0, 2.0);
}

TEST(RngTest, ExponentialNonNegative) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(RngTest, LognormalMedianApproximatelyMatches) {
  Rng rng(41);
  std::vector<double> vals;
  vals.reserve(20001);
  for (int i = 0; i < 20001; ++i) vals.push_back(rng.lognormal(100.0, 0.5));
  std::nth_element(vals.begin(), vals.begin() + 10000, vals.end());
  EXPECT_NEAR(vals[10000], 100.0, 5.0);
}

TEST(RngTest, LognormalZeroSigmaIsDeterministic) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(rng.lognormal(77.0, 0.0), 77.0);
}

}  // namespace
}  // namespace ccpr::util
