// Unit tests for the single-writer ProtocolEngine: concurrent producers,
// bounded-queue backpressure, parked covered_by waiters fulfilled by later
// applies, stop() aborting blocked reads, and queue accounting.
#include "server/protocol_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "causal/factory.hpp"
#include "causal/replica_map.hpp"
#include "metrics/metrics.hpp"

namespace ccpr::server {
namespace {

using namespace std::chrono_literals;

/// Captures a protocol's outbound messages so a test can deliver them to a
/// peer engine when (and if) it chooses.
class MessageTrap {
 public:
  causal::Services services(metrics::Metrics* sink) {
    causal::Services svc;
    svc.send = [this](net::Message m) {
      std::lock_guard lk(mu_);
      captured_.push_back(std::move(m));
    };
    svc.now = [] { return sim::SimTime{0}; };
    svc.metrics = sink;
    return svc;
  }

  std::vector<net::Message> drain() {
    std::lock_guard lk(mu_);
    return std::move(captured_);
  }

 private:
  std::mutex mu_;
  std::vector<net::Message> captured_;
};

/// One engine wrapping a protocol instance for site `self` of `rmap`.
struct EngineSite {
  EngineSite(causal::SiteId self, const causal::ReplicaMap& rmap,
             std::size_t queue_capacity = 1024) {
    ProtocolEngine::Options opts;
    opts.queue_capacity = queue_capacity;
    engine = std::make_unique<ProtocolEngine>(opts);
    engine->adopt_protocol(
        causal::make_protocol(causal::Algorithm::kOptTrack, self, rmap,
                              trap.services(&metrics)),
        &metrics);
    engine->start();
  }

  MessageTrap trap;
  metrics::Metrics metrics;
  std::unique_ptr<ProtocolEngine> engine;
};

TEST(ProtocolEngineTest, WritesAndReadsFromManyThreads) {
  const auto rmap = causal::ReplicaMap::full(1, 4);
  EngineSite site(0, rmap);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto x =
            static_cast<causal::VarId>(t + i) % rmap.vars();
        if (i % 2 == 0) {
          const auto r = site.engine->write(x, "v", true);
          if (!r || r->id.seq == 0) failures.fetch_add(1);
        } else {
          if (!site.engine->read(x)) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  const auto st = site.engine->status();
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->writes, kThreads * kOpsPerThread / 2u);
  EXPECT_EQ(st->reads, kThreads * kOpsPerThread / 2u);
}

TEST(ProtocolEngineTest, WriteIdsAreSequentialUnderConcurrency) {
  const auto rmap = causal::ReplicaMap::full(1, 1);
  EngineSite site(0, rmap);

  constexpr int kThreads = 4;
  constexpr int kWrites = 100;
  std::mutex mu;
  std::vector<std::uint64_t> seqs;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kWrites; ++i) {
        const auto r = site.engine->write(0, "v", true);
        ASSERT_TRUE(r.has_value());
        std::lock_guard lk(mu);
        seqs.push_back(r->id.seq);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every writer saw the id of *its own* write: all seqs distinct, and they
  // form exactly 1..N. A torn read under the old mutex-free race would
  // duplicate or skip.
  std::sort(seqs.begin(), seqs.end());
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i + 1);
}

TEST(ProtocolEngineTest, SnapshotIsOneApplySlot) {
  const auto rmap = causal::ReplicaMap::full(1, 3);
  EngineSite site(0, rmap);
  ASSERT_TRUE(site.engine->write(0, "a", true).has_value());
  ASSERT_TRUE(site.engine->write(1, "b", true).has_value());
  const auto values = site.engine->snapshot({0, 1, 2});
  ASSERT_TRUE(values.has_value());
  ASSERT_EQ(values->size(), 3u);
  EXPECT_EQ((*values)[0].data, "a");
  EXPECT_EQ((*values)[1].data, "b");
  EXPECT_TRUE((*values)[2].id.is_initial());
}

TEST(ProtocolEngineTest, BoundedQueueBlocksProducersAndCountsWaits) {
  const auto rmap = causal::ReplicaMap::full(1, 2);
  EngineSite site(0, rmap, /*queue_capacity=*/2);

  // Stall the apply thread on a command so the queue can fill behind it.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool open = false;
  site.engine->post_timer([&] {
    std::unique_lock lk(gate_mu);
    gate_cv.wait(lk, [&] { return open; });
  });

  constexpr int kProducers = 6;
  std::vector<std::thread> producers;
  std::atomic<int> completed{0};
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&] {
      if (site.engine->write(0, "v", true)) completed.fetch_add(1);
    });
  }
  // With the apply thread stalled, at most `capacity` commands may be
  // admitted; the remaining producers must be blocked in enqueue.
  std::this_thread::sleep_for(100ms);
  {
    const auto qs = site.engine->queue_stats();
    EXPECT_LE(qs.depth, 2u);
    EXPECT_LE(qs.peak_depth, 2u);
  }
  {
    std::lock_guard lk(gate_mu);
    open = true;
  }
  gate_cv.notify_all();
  for (auto& th : producers) th.join();
  EXPECT_EQ(completed.load(), kProducers);
  const auto qs = site.engine->queue_stats();
  EXPECT_GT(qs.producer_waits, 0u);
  EXPECT_EQ(qs.capacity, 2u);
}

TEST(ProtocolEngineTest, CoveredWaiterFulfilledByLaterApply) {
  // Two sites, every var on both. Site 0 writes but its update is trapped,
  // so site 1 is not covered by site 0's token until the test delivers it.
  const auto rmap = causal::ReplicaMap::full(2, 2);
  EngineSite a(0, rmap);
  EngineSite b(1, rmap);

  ASSERT_TRUE(a.engine->write(0, "v", true).has_value());
  const auto token = a.engine->coverage_token(1);
  ASSERT_TRUE(token.has_value());

  // Not covered yet: the wait must time out with verdict false.
  const auto miss = b.engine->wait_covered(*token, 50'000);
  ASSERT_TRUE(miss.has_value());
  EXPECT_FALSE(*miss);

  // Park a long wait, then deliver the trapped update; the apply must wake
  // and fulfill the parked waiter well before its deadline.
  std::thread waiter([&] {
    const auto hit = b.engine->wait_covered(*token, 5'000'000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(*hit);
  });
  std::this_thread::sleep_for(50ms);
  for (auto& msg : a.trap.drain()) {
    if (msg.dst == 1) b.engine->apply_message(std::move(msg));
  }
  waiter.join();
}

TEST(ProtocolEngineTest, StopAbortsBlockedRemoteRead) {
  // Var 1 lives only at site 1, so site 0's read issues a RemoteFetch whose
  // response never arrives (the trap swallows it): the reader parks.
  const auto rmap =
      causal::ReplicaMap::custom(2, {{0}, {1}});
  EngineSite a(0, rmap);

  std::atomic<bool> returned{false};
  std::thread reader([&] {
    const auto v = a.engine->read(1);
    EXPECT_FALSE(v.has_value());
    returned.store(true);
  });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(returned.load());
  a.engine->stop();
  reader.join();
  EXPECT_TRUE(returned.load());

  // A stopped engine rejects everything with nullopt.
  EXPECT_FALSE(a.engine->write(0, "v", true).has_value());
  EXPECT_FALSE(a.engine->read(0).has_value());
}

TEST(ProtocolEngineTest, StopAbortsParkedCoveredWaiter) {
  const auto rmap = causal::ReplicaMap::full(2, 1);
  EngineSite a(0, rmap);
  EngineSite b(1, rmap);
  ASSERT_TRUE(a.engine->write(0, "v", true).has_value());
  const auto token = a.engine->coverage_token(1);
  ASSERT_TRUE(token.has_value());

  std::thread waiter([&] {
    EXPECT_FALSE(b.engine->wait_covered(*token, 30'000'000).has_value());
  });
  std::this_thread::sleep_for(50ms);
  b.engine->stop();
  waiter.join();
}

TEST(ProtocolEngineTest, QueueStatsCountPerKind) {
  const auto rmap = causal::ReplicaMap::full(1, 2);
  EngineSite site(0, rmap);
  ASSERT_TRUE(site.engine->write(0, "v", true).has_value());
  ASSERT_TRUE(site.engine->read(0).has_value());
  ASSERT_TRUE(site.engine->snapshot({0, 1}).has_value());
  ASSERT_TRUE(site.engine->status().has_value());
  site.engine->post_timer([] {});

  const auto qs = site.engine->queue_stats();
  using Kind = ProtocolEngine::CmdKind;
  const auto count = [&](Kind k) {
    return qs.enqueued[static_cast<std::size_t>(k)];
  };
  EXPECT_EQ(count(Kind::kWrite), 1u);
  EXPECT_EQ(count(Kind::kRead), 1u);
  EXPECT_EQ(count(Kind::kSnapshot), 1u);
  EXPECT_GE(count(Kind::kStatus), 1u);
  EXPECT_EQ(count(Kind::kTimer), 1u);
  EXPECT_EQ(qs.enqueued_total(),
            count(Kind::kWrite) + count(Kind::kRead) + count(Kind::kSnapshot) +
                count(Kind::kStatus) + count(Kind::kTimer));
}

TEST(ProtocolEngineTest, MetricsSnapshotReadableAfterStop) {
  const auto rmap = causal::ReplicaMap::full(1, 1);
  EngineSite site(0, rmap);
  ASSERT_TRUE(site.engine->write(0, "v", true).has_value());
  site.engine->stop();
  const auto m = site.engine->protocol_metrics();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->writes, 1u);
  const auto st = site.engine->status();
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->writes, 1u);
}

// Two threads racing stop() must not both join the apply thread (a second
// join on an already-joined std::thread throws), and post-mortem quiescent
// reads must serialize against the lifecycle, not crash.
TEST(ProtocolEngineTest, ConcurrentStopsAndPostMortemReadsAreSafe) {
  const auto rmap = causal::ReplicaMap::full(1, 1);
  EngineSite site(0, rmap);
  ASSERT_TRUE(site.engine->write(0, "v", true).has_value());

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] { site.engine->stop(); });
  }
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      // During the stop race these may see nullopt (stop in flight) or the
      // quiescent fallback value; either way they must not crash or race.
      (void)site.engine->status();
      (void)site.engine->protocol_metrics();
    });
  }
  for (auto& th : threads) th.join();

  const auto st = site.engine->status();
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->writes, 1u);
}

}  // namespace
}  // namespace ccpr::server
