// Shared helpers for protocol and integration tests.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "causal/sim_cluster.hpp"
#include "checker/causal_checker.hpp"
#include "sim/latency.hpp"

namespace ccpr::testing {

/// Cluster options with a fixed one-way delay on every channel.
inline causal::SimCluster::Options constant_latency(sim::SimTime us) {
  causal::SimCluster::Options o;
  o.latency = std::make_unique<sim::ConstantLatency>(us);
  return o;
}

/// Cluster options with an explicit n x n one-way delay matrix (row-major,
/// no jitter) — the tool for deterministic message-race scenarios.
inline causal::SimCluster::Options matrix_latency(
    std::uint32_t n, std::vector<sim::SimTime> base_us) {
  causal::SimCluster::Options o;
  o.latency = std::make_unique<sim::GeoLatency>(n, std::move(base_us), 0.0);
  return o;
}

/// Asserts the recorded history is causally consistent.
inline void expect_causal(const causal::SimCluster& cluster,
                          bool require_complete = true) {
  checker::CheckOptions opts;
  opts.require_complete_delivery = require_complete;
  const auto result = checker::check_causal_consistency(
      cluster.history(), cluster.replica_map(), opts);
  EXPECT_TRUE(result.ok);
  for (const auto& v : result.violations) ADD_FAILURE() << v;
}

/// The sequence of writes applied at `site`, in apply order.
inline std::vector<causal::WriteId> applies_at(
    const checker::HistoryRecorder& history, causal::SiteId site) {
  std::vector<causal::WriteId> out;
  for (const auto& a : history.applies()) {
    if (a.site == site) out.push_back(a.write);
  }
  return out;
}

/// Index of `id` in `seq`, or -1.
inline std::ptrdiff_t index_of(const std::vector<causal::WriteId>& seq,
                               causal::WriteId id) {
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i] == id) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

}  // namespace ccpr::testing
