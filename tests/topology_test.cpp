// server::Topology semantics: region/link resolution, the site-distance
// matrix it exports into ReplicaMap routing, the sim latency matrix, and
// the `placement region` <-> store::region_placement equivalence.
#include "server/topology.hpp"

#include <gtest/gtest.h>

#include <set>

#include "server/cluster_config.hpp"
#include "store/placement.hpp"
#include "util/rng.hpp"

namespace ccpr::server {
namespace {

/// eu{0,1,2} us{3,4} ap{5}; eu-us 40ms, eu-ap 90ms, us-ap defaulted.
Topology sample_topology() {
  Topology topo;
  topo.region_names = {"eu", "us", "ap"};
  topo.intra_us = {2'000, 3'000, 4'000};
  topo.region_of_site = {0, 0, 0, 1, 1, 2};
  topo.links = {Topology::Link{0, 1, 40'000}, Topology::Link{0, 2, 90'000}};
  return topo;
}

TEST(TopologyTest, RegionLookupsAndDefaults) {
  const auto topo = sample_topology();
  EXPECT_EQ(topo.region_count(), 3u);
  EXPECT_EQ(topo.site_count(), 6u);
  EXPECT_EQ(topo.region_id("us"), 1u);
  EXPECT_FALSE(topo.region_id("mars").has_value());
  EXPECT_EQ(topo.region_of(4), 1u);
  EXPECT_EQ(topo.region_name_of(5), "ap");
  EXPECT_EQ(topo.link_us(0, 1), 40'000u);
  EXPECT_EQ(topo.link_us(1, 0), 40'000u);  // either order
  EXPECT_EQ(topo.link_us(1, 2), Topology::kDefaultInterUs);  // unlisted
  EXPECT_EQ(topo.link_us(1, 1), 3'000u);  // diagonal = intra class
  EXPECT_EQ(topo.sites_in_region(1), (std::vector<causal::SiteId>{3, 4}));
  EXPECT_TRUE(topo.sites_in_region(0).size() == 3);
}

TEST(TopologyTest, SiteDistanceMatrixShape) {
  const auto topo = sample_topology();
  const auto d = topo.site_distance_matrix();
  ASSERT_EQ(d.size(), 36u);
  for (causal::SiteId i = 0; i < 6; ++i) {
    for (causal::SiteId j = 0; j < 6; ++j) {
      EXPECT_EQ(d[i * 6 + j], topo.site_distance_us(i, j));
      EXPECT_EQ(d[i * 6 + j], d[j * 6 + i]);  // symmetric
    }
    EXPECT_EQ(d[i * 6 + i], 0u);  // self-distance
  }
  EXPECT_EQ(topo.site_distance_us(0, 1), 2'000u);   // intra eu
  EXPECT_EQ(topo.site_distance_us(0, 3), 40'000u);  // eu -> us
  EXPECT_EQ(topo.site_distance_us(3, 5), Topology::kDefaultInterUs);
}

TEST(TopologyTest, LatencyMatrixDiagonalIsIntraHop) {
  // Unlike the routing distance matrix, the sim latency matrix never says a
  // message is free: a site's loopback costs one intra-region hop.
  const auto topo = sample_topology();
  const auto m = topo.latency_matrix();
  ASSERT_EQ(m.size(), 36u);
  EXPECT_EQ(m[0], 2'000);           // site 0 to itself: eu intra
  EXPECT_EQ(m[5 * 6 + 5], 4'000);   // site 5 to itself: ap intra
  EXPECT_EQ(m[0 * 6 + 3], 40'000);  // eu -> us
}

TEST(TopologyTest, MakeLatencyIsTopologyDriven) {
  const auto topo = sample_topology();
  // jitter 0: samples are exactly the base matrix.
  auto model = topo.make_latency(0.0);
  util::Rng rng(7);
  EXPECT_EQ(model->sample(0, 1, rng), 2'000);
  EXPECT_EQ(model->sample(0, 3, rng), 40'000);
  EXPECT_EQ(model->sample(3, 5, rng),
            static_cast<sim::SimTime>(Topology::kDefaultInterUs));
}

TEST(TopologyTest, HomeRegionAnchorsAtRingSite) {
  const auto topo = sample_topology();
  const auto home = topo.home_region_of_var(8);
  ASSERT_EQ(home.size(), 8u);
  for (std::uint32_t x = 0; x < 8; ++x) {
    EXPECT_EQ(home[x], topo.region_of(x % 6));
  }
}

TEST(TopologyTest, ValidateCatchesInconsistencies) {
  std::string error;
  EXPECT_TRUE(sample_topology().validate(6, &error)) << error;
  EXPECT_TRUE(Topology{}.validate(6, &error)) << error;  // flat cluster
  {
    auto topo = sample_topology();
    topo.region_of_site.pop_back();
    EXPECT_FALSE(topo.validate(6, &error));
    EXPECT_NE(error.find("every site"), std::string::npos) << error;
  }
  {
    auto topo = sample_topology();
    topo.links.push_back(Topology::Link{1, 1, 5});
    EXPECT_FALSE(topo.validate(6, &error));
    EXPECT_NE(error.find("intra-region"), std::string::npos) << error;
  }
  {
    auto topo = sample_topology();
    topo.links.push_back(Topology::Link{1, 0, 5});  // reversed duplicate
    EXPECT_FALSE(topo.validate(6, &error));
    EXPECT_NE(error.find("duplicate link"), std::string::npos) << error;
  }
  {
    auto topo = sample_topology();
    topo.intra_us.pop_back();
    EXPECT_FALSE(topo.validate(6, &error));
  }
  {
    auto topo = sample_topology();
    topo.region_names[2] = "eu";
    EXPECT_FALSE(topo.validate(6, &error));
    EXPECT_NE(error.find("duplicate region"), std::string::npos) << error;
  }
  {
    Topology topo;  // region data without declarations
    topo.region_of_site = {0};
    EXPECT_FALSE(topo.validate(1, &error));
  }
}

ClusterConfig geo_config() {
  ClusterConfig cfg;
  cfg.vars = 12;
  cfg.replicas_per_var = 2;
  cfg.placement = PlacementPolicy::kRegion;
  cfg.sites.resize(6);
  cfg.topology = sample_topology();
  return cfg;
}

TEST(TopologyTest, RegionPlacementMatchesStoreLayer) {
  // Acceptance check: `placement region` through ClusterConfig must equal
  // calling store::region_placement directly with the topology's region
  // assignment and home-region rule.
  const auto cfg = geo_config();
  const auto via_config = cfg.replica_map();
  const auto direct = store::region_placement(
      cfg.topology.region_of_site, cfg.topology.home_region_of_var(cfg.vars),
      cfg.replicas_per_var);
  ASSERT_EQ(via_config.vars(), direct.vars());
  for (causal::VarId x = 0; x < cfg.vars; ++x) {
    const auto a = via_config.replicas(x);
    const auto b = direct.replicas(x);
    ASSERT_EQ(a.size(), b.size()) << "var " << x;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "var " << x;
    }
  }
}

TEST(TopologyTest, ConfigReplicaMapCarriesDistances) {
  const auto rmap = geo_config().replica_map();
  ASSERT_TRUE(rmap.has_site_distances());
  EXPECT_EQ(rmap.site_distance(0, 1), 2'000u);
  EXPECT_EQ(rmap.site_distance(0, 3), 40'000u);
}

TEST(TopologyTest, IntraRegionReaderNeverRoutedCrossRegion) {
  // Acceptance check: whenever a variable has a replica in the reader's
  // region, the fetch target stays in that region; only vars with no
  // regional replica cross the WAN.
  const auto cfg = geo_config();
  const auto rmap = cfg.replica_map();
  const auto& topo = cfg.topology;
  for (causal::VarId x = 0; x < cfg.vars; ++x) {
    for (causal::SiteId reader = 0; reader < 6; ++reader) {
      bool regional_replica = false;
      for (const auto s : rmap.replicas(x)) {
        if (topo.region_of(s) == topo.region_of(reader)) {
          regional_replica = true;
        }
      }
      const auto target = rmap.fetch_target(x, reader);
      EXPECT_TRUE(rmap.replicated_at(x, target));
      EXPECT_EQ(topo.region_of(target) == topo.region_of(reader),
                regional_replica)
          << "var " << x << " reader " << reader << " -> " << target;
    }
  }
}

TEST(TopologyTest, RankedFallbackStillCyclesAllReplicas) {
  const auto cfg = geo_config();
  const auto rmap = cfg.replica_map();
  for (causal::VarId x = 0; x < cfg.vars; ++x) {
    const auto reps = rmap.replicas(x);
    for (causal::SiteId reader = 0; reader < 6; ++reader) {
      std::set<causal::SiteId> seen;
      for (std::uint32_t rank = 0;
           rank < static_cast<std::uint32_t>(reps.size()); ++rank) {
        seen.insert(rmap.fetch_target_ranked(x, reader, rank));
      }
      EXPECT_EQ(seen.size(), reps.size())
          << "var " << x << " reader " << reader;
      // Rank 0 is the plain fetch target and nearest replicas come first.
      EXPECT_EQ(rmap.fetch_target_ranked(x, reader, 0),
                rmap.fetch_target(x, reader));
    }
  }
}

}  // namespace
}  // namespace ccpr::server
