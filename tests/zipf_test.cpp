#include "util/zipf.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ccpr::util {
namespace {

TEST(ZipfTest, SamplesStayInRange) {
  ZipfSampler zipf(100, 0.99);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.sample(rng), 100u);
}

TEST(ZipfTest, SingleItemAlwaysZero) {
  ZipfSampler zipf(1, 0.5);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(ZipfTest, RankZeroIsMostPopular) {
  ZipfSampler zipf(50, 0.99);
  Rng rng(3);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  // Head dominates and frequency decays with rank.
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0] + counts[1] + counts[2], 50000 / 4);
}

TEST(ZipfTest, ThetaZeroIsCloseToUniform) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(4);
  std::vector<int> counts(10, 0);
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[zipf.sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.1, 0.03);
  }
}

TEST(ZipfTest, HigherThetaIsMoreSkewed) {
  ZipfSampler mild(100, 0.3);
  ZipfSampler hot(100, 0.95);
  Rng rng_a(5), rng_b(5);
  int mild_head = 0, hot_head = 0;
  for (int i = 0; i < 20000; ++i) {
    mild_head += mild.sample(rng_a) == 0 ? 1 : 0;
    hot_head += hot.sample(rng_b) == 0 ? 1 : 0;
  }
  EXPECT_GT(hot_head, mild_head);
}

TEST(ZipfTest, DeterministicGivenSeed) {
  ZipfSampler zipf(64, 0.7);
  Rng a(6), b(6);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(zipf.sample(a), zipf.sample(b));
}

}  // namespace
}  // namespace ccpr::util
