#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace ccpr::util {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, KeyValueForms) {
  const auto f = parse({"--n=10", "--write-rate=0.5", "--alg=opt-track"});
  EXPECT_EQ(f.get_int("n", 0), 10);
  EXPECT_DOUBLE_EQ(f.get_double("write-rate", 0.0), 0.5);
  EXPECT_EQ(f.get_string("alg", ""), "opt-track");
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  const auto f = parse({});
  EXPECT_EQ(f.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("x", 1.5), 1.5);
  EXPECT_EQ(f.get_string("s", "dflt"), "dflt");
  EXPECT_FALSE(f.get_bool("b", false));
  EXPECT_TRUE(f.get_bool("b", true));
}

TEST(FlagsTest, BareSwitchIsTrue) {
  const auto f = parse({"--check"});
  EXPECT_TRUE(f.has("check"));
  EXPECT_TRUE(f.get_bool("check", false));
}

TEST(FlagsTest, ExplicitBooleans) {
  const auto f = parse({"--a=true", "--b=false", "--c=1", "--d=0",
                        "--e=yes", "--g=no"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
  EXPECT_TRUE(f.get_bool("e", false));
  EXPECT_FALSE(f.get_bool("g", true));
}

TEST(FlagsTest, PositionalArguments) {
  const auto f = parse({"input.txt", "--n=3", "out.csv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "out.csv");
}

TEST(FlagsTest, LastValueWins) {
  const auto f = parse({"--n=1", "--n=2"});
  EXPECT_EQ(f.get_int("n", 0), 2);
}

TEST(FlagsTest, NamesListsFlags) {
  const auto f = parse({"--b=1", "--a"});
  const auto names = f.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(FlagsTest, UnknownFlagsReportsUnqueriedOnly) {
  const auto f = parse({"--n=1", "--typo=2"});
  EXPECT_EQ(f.get_int("n", 0), 1);
  const auto unknown = f.unknown_flags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(FlagsTest, EveryAccessorMarksFlagsKnown) {
  const auto f = parse({"--a=1", "--b=2.5", "--c=x", "--d=true", "--e"});
  f.get_int("a", 0);
  f.get_double("b", 0.0);
  f.get_string("c", "");
  f.get_bool("d", false);
  f.has("e");
  EXPECT_TRUE(f.unknown_flags().empty());
}

TEST(FlagsTest, QueryingAbsentFlagIsHarmless) {
  const auto f = parse({"--quick"});
  f.get_bool("quick", false);
  f.get_int("ops", 100);  // queried but not on the command line
  EXPECT_TRUE(f.unknown_flags().empty());
}

TEST(FlagsTest, NoteKnownCoversUnqueriedFlags) {
  // ccpr_server/ccpr_client style: an early-return branch (--check-config,
  // a subcommand) may skip the accessors for flags other branches read.
  const auto f = parse({"--site=A", "--config=x.json", "--typo=1"});
  f.note_known({"site", "config"});
  const auto unknown = f.unknown_flags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(FlagsTest, UnknownFlagsAreSorted) {
  const auto f = parse({"--zz", "--aa", "--mm=3"});
  const auto unknown = f.unknown_flags();
  ASSERT_EQ(unknown.size(), 3u);
  EXPECT_EQ(unknown[0], "aa");
  EXPECT_EQ(unknown[1], "mm");
  EXPECT_EQ(unknown[2], "zz");
}

TEST(FlagsTest, ExitOnUnknownIsNoopWhenAllKnown) {
  const auto f = parse({"--ops=50"});
  f.get_int("ops", 0);
  f.exit_on_unknown("bench");  // must return, not exit
  SUCCEED();
}

TEST(FlagsDeathTest, ExitOnUnknownExitsWithCode2) {
  const auto f = parse({"--opps=50"});
  f.get_int("ops", 0);
  EXPECT_EXIT(f.exit_on_unknown("bench"), testing::ExitedWithCode(2),
              "bench: unknown flag --opps");
}

TEST(FlagsDeathTest, ExitOnUnknownSuggestsNearbyFlag) {
  const auto f = parse({"--opps=50"});
  f.get_int("ops", 0);
  EXPECT_EXIT(f.exit_on_unknown("bench"), testing::ExitedWithCode(2),
              "did you mean --ops");
}

}  // namespace
}  // namespace ccpr::util
