#include "causal/opt_track_crp.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace ccpr::causal {
namespace {

using ccpr::testing::applies_at;
using ccpr::testing::constant_latency;
using ccpr::testing::expect_causal;
using ccpr::testing::index_of;
using ccpr::testing::matrix_latency;

const OptTrackCRP& crp(const SimCluster& c, SiteId s) {
  return dynamic_cast<const OptTrackCRP&>(c.site(s));
}

TEST(OptTrackCRPTest, LogResetsAfterEveryWrite) {
  // Fig. 3 of the paper: after a write the local log is exactly the write
  // itself.
  SimCluster c(Algorithm::kOptTrackCRP, ReplicaMap::full(3, 4),
               constant_latency(100));
  c.write(0, 0, "a");
  c.run();
  ASSERT_EQ(c.read(0, 0).data, "a");  // read own var: merges <0,1>
  c.write(0, 1, "b");
  c.write(0, 2, "c");
  const auto& log = crp(c, 0).log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].sender, 0u);
  EXPECT_EQ(log[0].clock, 3u);
  c.run();
  expect_causal(c);
}

TEST(OptTrackCRPTest, ReadAddsAtMostOneEntryPerSender) {
  SimCluster c(Algorithm::kOptTrackCRP, ReplicaMap::full(3, 6),
               constant_latency(100));
  c.write(1, 0, "a");
  c.write(1, 1, "b");
  c.write(2, 2, "c");
  c.run();
  // Site 0 reads three variables written by two senders: the log holds one
  // entry per sender it read from (the d+1 bound of the paper, d = reads
  // since last local write).
  ASSERT_EQ(c.read(0, 0).data, "a");
  ASSERT_EQ(c.read(0, 1).data, "b");
  ASSERT_EQ(c.read(0, 2).data, "c");
  const auto& log = crp(c, 0).log();
  EXPECT_EQ(log.size(), 2u);
  // Reading sender 1's older value after its newer one must not regress.
  ASSERT_EQ(c.read(0, 0).data, "a");
  EXPECT_EQ(crp(c, 0).log().size(), 2u);
  for (const auto& e : crp(c, 0).log()) {
    if (e.sender == 1) {
      EXPECT_EQ(e.clock, 2u);
    }
  }
  expect_causal(c);
}

TEST(OptTrackCRPTest, CausalChainRespectedAcrossSlowChannel) {
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(Algorithm::kOptTrackCRP, ReplicaMap::full(3, 2),
               std::move(opts));
  c.write(0, 0, "a");
  c.run_until(5'000);
  ASSERT_EQ(c.read(1, 0).data, "a");
  c.write(1, 1, "b");
  c.run();
  const auto seq = applies_at(c.history(), 2);
  EXPECT_LT(index_of(seq, WriteId{0, 1}), index_of(seq, WriteId{1, 1}));
  expect_causal(c);
}

TEST(OptTrackCRPTest, ConcurrentWritesNotDelayed) {
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(Algorithm::kOptTrackCRP, ReplicaMap::full(3, 2),
               std::move(opts));
  c.write(0, 0, "a");
  c.run_until(5'000);
  c.write(1, 1, "b");
  c.run();
  const auto seq = applies_at(c.history(), 2);
  EXPECT_LT(index_of(seq, WriteId{1, 1}), index_of(seq, WriteId{0, 1}));
  expect_causal(c);
}

TEST(OptTrackCRPTest, WriteChainThroughOwnLogEntry) {
  // Successive writes by one site must apply in order remotely even when no
  // reads happen: each write's log carries the previous write's 2-tuple.
  SimCluster c(Algorithm::kOptTrackCRP, ReplicaMap::full(2, 1),
               constant_latency(100));
  for (int i = 1; i <= 10; ++i) c.write(0, 0, "v" + std::to_string(i));
  c.run();
  const auto seq = applies_at(c.history(), 1);
  ASSERT_EQ(seq.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(seq[i].seq, i + 1);
  expect_causal(c);
}

TEST(OptTrackCRPTest, MessageOverheadIsTuplesNotVectors) {
  // One write with an empty log: control bytes per update must be O(1) —
  // far below n * 8 for large n.
  const std::uint32_t n = 32;
  SimCluster c(Algorithm::kOptTrackCRP, ReplicaMap::full(n, 2),
               constant_latency(100));
  c.write(0, 0, "x");
  c.run();
  const auto m = c.metrics();
  EXPECT_EQ(m.update_msgs, n - 1);
  const double per_msg = m.control_bytes_per_message();
  EXPECT_LT(per_msg, 24.0);  // var + value-id + clock + log count, all tiny
  expect_causal(c);
}

TEST(OptTrackCRPTest, RequiresFullReplication) {
  EXPECT_DEATH(
      {
        SimCluster c(Algorithm::kOptTrackCRP, ReplicaMap::even(3, 3, 2),
                     constant_latency(10));
      },
      "Precondition");
}

TEST(OptTrackCRPTest, ApplyAssignsSenderClock) {
  SimCluster c(Algorithm::kOptTrackCRP, ReplicaMap::full(2, 3),
               constant_latency(100));
  c.write(0, 0, "a");
  c.write(0, 1, "b");
  c.write(0, 2, "c");
  c.run();
  EXPECT_EQ(crp(c, 1).applied_clock(0), 3u);
  expect_causal(c);
}

}  // namespace
}  // namespace ccpr::causal
