// Causal+ convergence mode (paper §V): LWW applies make replicas agree
// after quiescence while remaining causally consistent.
#include <gtest/gtest.h>

#include <memory>

#include "checker/causal_checker.hpp"
#include "checker/convergence.hpp"
#include "test_support.hpp"
#include "workload/workload.hpp"

namespace ccpr::causal {
namespace {

using ccpr::testing::matrix_latency;

checker::ConvergenceReport audit(const SimCluster& c) {
  return checker::audit_convergence(
      c.replica_map(),
      [&c](SiteId s, VarId x) { return c.site(s).peek(x); });
}

TEST(ConvergentModeTest, ConcurrentWritesConverge) {
  // The divergence scenario from convergence_test, now with causal+ on:
  // both replicas must settle on the same (LWW) winner.
  auto opts = matrix_latency(2, {0, 30'000, 30'000, 0});
  opts.protocol.convergent = true;
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::full(2, 1),
               std::move(opts));
  c.write(0, 0, "from-0");
  c.write(1, 0, "from-1");  // concurrent, same LWW rank by seq -> writer 1
  c.run();
  EXPECT_EQ(c.site(0).peek(0).data, "from-1");
  EXPECT_EQ(c.site(1).peek(0).data, "from-1");
  EXPECT_TRUE(audit(c).converged());
}

TEST(ConvergentModeTest, WithoutModeTheSameRunDiverges) {
  auto opts = matrix_latency(2, {0, 30'000, 30'000, 0});
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::full(2, 1),
               std::move(opts));
  c.write(0, 0, "from-0");
  c.write(1, 0, "from-1");
  c.run();
  EXPECT_EQ(audit(c).divergent_vars, 1u);
}

TEST(ConvergentModeTest, CausallyOrderedWritesKeepLastValue) {
  // LWW must never override a causally newer value: s1 reads s0's write
  // then overwrites it; even though both ids grow, the causal order and the
  // LWW order agree here and the final value is s1's.
  auto opts = ccpr::testing::constant_latency(1'000);
  opts.protocol.convergent = true;
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::full(2, 2),
               std::move(opts));
  c.write(0, 0, "v1");
  c.run();
  ASSERT_EQ(c.read(1, 0).data, "v1");
  c.write(1, 0, "v2");
  c.run();
  EXPECT_EQ(c.site(0).peek(0).data, "v2");
  EXPECT_EQ(c.site(1).peek(0).data, "v2");
  EXPECT_TRUE(audit(c).converged());
}

struct ConvergentSweepParam {
  Algorithm alg;
  std::uint32_t p;
  const char* name;
};

class ConvergentSweep
    : public ::testing::TestWithParam<ConvergentSweepParam> {};

TEST_P(ConvergentSweep, RandomWorkloadConvergesAndStaysCausal) {
  const auto& param = GetParam();
  const std::uint32_t n = 4, q = 10;
  const auto rmap = ReplicaMap::even(n, q, param.p);
  workload::WorkloadSpec spec;
  spec.ops_per_site = 150;
  spec.write_rate = 0.5;
  spec.seed = 77;
  const Program program = workload::generate_program(spec, rmap);

  SimCluster::Options opts;
  opts.latency = std::make_unique<sim::UniformLatency>(5'000, 50'000);
  opts.protocol.convergent = true;
  SimCluster cluster(param.alg, ReplicaMap::even(n, q, param.p),
                     std::move(opts));
  cluster.run_program(program);

  EXPECT_TRUE(audit(cluster).converged());
  // Causal consistency still holds; read legality is unaffected because an
  // apply that loses LWW only suppresses an already-overwritten value.
  const auto result = checker::check_causal_consistency(
      cluster.history(), cluster.replica_map());
  EXPECT_TRUE(result.ok);
  for (const auto& v : result.violations) ADD_FAILURE() << v;
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, ConvergentSweep,
    ::testing::Values(
        ConvergentSweepParam{Algorithm::kOptTrack, 2, "OptTrack_partial"},
        ConvergentSweepParam{Algorithm::kFullTrack, 2, "FullTrack_partial"},
        ConvergentSweepParam{Algorithm::kOptTrackCRP, 4, "CRP"},
        ConvergentSweepParam{Algorithm::kOptP, 4, "OptP"}),
    [](const ::testing::TestParamInfo<ConvergentSweepParam>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace ccpr::causal
