#include "store/geo_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "checker/causal_checker.hpp"
#include "store/placement.hpp"

namespace ccpr::store {
namespace {

using causal::Algorithm;
using causal::ReplicaMap;

KeySpace three_keys() {
  return KeySpace({"alice:wall", "bob:wall", "carol:wall"});
}

// GeoStore behavior must be engine-independent: every test below runs once
// per value-store engine, selected through ProtocolOptions.
class GeoStoreTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  GeoStore::Options with_engine(GeoStore::Options opts = {}) const {
    opts.protocol.store_engine.kind = GetParam();
    opts.protocol.store_engine.shards = 2;  // tiny tables, more edge cases
    return opts;
  }
};

INSTANTIATE_TEST_SUITE_P(Engines, GeoStoreTest,
                         ::testing::Values(EngineKind::kMap,
                                           EngineKind::kCompact),
                         [](const auto& info) {
                           return std::string(engine_kind_token(info.param));
                         });

TEST(KeySpaceTest, InternsRegisteredKeys) {
  const KeySpace ks({"a", "b", "c"});
  EXPECT_EQ(ks.size(), 3u);
  EXPECT_EQ(ks.intern("a"), 0u);
  EXPECT_EQ(ks.intern("c"), 2u);
  EXPECT_EQ(ks.name(1), "b");
  EXPECT_TRUE(ks.contains("b"));
  EXPECT_FALSE(ks.contains("zzz"));
}

TEST(KeySpaceTest, DuplicateKeyRejected) {
  EXPECT_DEATH({ KeySpace ks({"a", "a"}); }, "Precondition");
}

TEST(HashPlacementTest, ProducesPDistinctReplicas) {
  const auto rmap = hash_placement(6, 30, 3, 42);
  EXPECT_EQ(rmap.vars(), 30u);
  for (causal::VarId x = 0; x < 30; ++x) {
    EXPECT_EQ(rmap.replicas(x).size(), 3u);  // distinct by construction
  }
  EXPECT_DOUBLE_EQ(rmap.replication_factor(), 3.0);
}

TEST(HashPlacementTest, DeterministicPerSeedAndSpreads) {
  const auto a = hash_placement(5, 40, 2, 7);
  const auto b = hash_placement(5, 40, 2, 7);
  std::vector<std::size_t> load(5, 0);
  for (causal::VarId x = 0; x < 40; ++x) {
    const auto ra = a.replicas(x);
    const auto rb = b.replicas(x);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i], rb[i]);
    for (const auto s : ra) ++load[s];
  }
  for (const auto l : load) EXPECT_GT(l, 4u);  // no starved site
}

TEST(RegionPlacementTest, StaysInHomeRegionWhenPossible) {
  const std::vector<std::uint32_t> region_of_site{0, 0, 0, 1, 1, 1};
  const std::vector<std::uint32_t> home{0, 1, 0, 1};
  const auto rmap = region_placement(region_of_site, home, 2);
  for (causal::VarId x = 0; x < 4; ++x) {
    for (const auto s : rmap.replicas(x)) {
      EXPECT_EQ(region_of_site[s], home[x]);
    }
  }
}

TEST(RegionPlacementTest, SpillsWhenRegionTooSmall) {
  const std::vector<std::uint32_t> region_of_site{0, 1, 1};
  const std::vector<std::uint32_t> home{0};
  const auto rmap = region_placement(region_of_site, home, 2);
  const auto reps = rmap.replicas(0);
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_TRUE(std::find(reps.begin(), reps.end(), 0u) != reps.end());
}

TEST(RegionPlacementTest, ClampsWhenPExceedsTotalSites) {
  // p beyond the cluster degrades to full replication (every site once),
  // matching the ring policy's clamp instead of aborting.
  const std::vector<std::uint32_t> region_of_site{0, 1, 1};
  const std::vector<std::uint32_t> home{0, 1};
  const auto rmap = region_placement(region_of_site, home, 7);
  for (causal::VarId x = 0; x < 2; ++x) {
    EXPECT_EQ(rmap.replicas(x).size(), 3u);
  }
  EXPECT_TRUE(rmap.fully_replicated());
}

TEST(RegionPlacementTest, SkipsZeroSiteRegions) {
  // Region 1 exists (home of var 1) but holds no sites; its vars spill to
  // the next regions and every var still gets exactly p replicas.
  const std::vector<std::uint32_t> region_of_site{0, 0, 2, 2};
  const std::vector<std::uint32_t> home{0, 1, 2};
  const auto rmap = region_placement(region_of_site, home, 2);
  for (causal::VarId x = 0; x < 3; ++x) {
    EXPECT_EQ(rmap.replicas(x).size(), 2u);
  }
  // Var 1's walk starts at empty region 1 and lands in region 2.
  for (const auto s : rmap.replicas(1)) {
    EXPECT_EQ(region_of_site[s], 2u);
  }
}

TEST(RegionPlacementTest, SingleRegionIsRoundRobin) {
  const std::vector<std::uint32_t> region_of_site{0, 0, 0, 0};
  const std::vector<std::uint32_t> home{0, 0, 0, 0, 0};
  const auto rmap = region_placement(region_of_site, home, 2);
  for (causal::VarId x = 0; x < 5; ++x) {
    const auto reps = rmap.replicas(x);
    ASSERT_EQ(reps.size(), 2u);
    // Round-robin by var id: {x mod 4, x+1 mod 4} within the one region.
    EXPECT_TRUE(rmap.replicated_at(x, x % 4));
    EXPECT_TRUE(rmap.replicated_at(x, (x + 1) % 4));
  }
}

TEST_P(GeoStoreTest, PutThenGetSameSession) {
  GeoStore store(three_keys(), ReplicaMap::even(3, 3, 2), with_engine());
  auto s = store.session(0);
  s.put("alice:wall", "first post!");
  EXPECT_EQ(s.get("alice:wall"), "first post!");
  store.flush();
}

TEST_P(GeoStoreTest, CrossSessionVisibilityAfterFlush) {
  GeoStore store(three_keys(), ReplicaMap::even(3, 3, 2), with_engine());
  auto a = store.session(0);
  auto b = store.session(2);
  a.put("alice:wall", "hello from 0");
  store.flush();
  EXPECT_EQ(b.get("alice:wall"), "hello from 0");
}

TEST_P(GeoStoreTest, UnwrittenKeyReadsEmpty) {
  GeoStore store(three_keys(), ReplicaMap::even(3, 3, 2), with_engine());
  EXPECT_EQ(store.session(1).get("bob:wall"), "");
}

TEST_P(GeoStoreTest, CausalAcrossKeysAndSessions) {
  // The classic comment-after-post pattern, checked end to end.
  GeoStore::Options opts;
  opts.algorithm = Algorithm::kOptTrack;
  opts.max_delay_us = 200;
  GeoStore store(three_keys(), ReplicaMap::even(3, 3, 2), with_engine(opts));
  auto alice = store.session(0);
  auto bob = store.session(1);
  alice.put("alice:wall", "photo");
  // Bob reads the photo, then comments on his wall.
  while (bob.get("alice:wall") != "photo") {
  }
  bob.put("bob:wall", "nice photo!");
  store.flush();
  const auto result = checker::check_causal_consistency(
      store.history(), store.replica_map());
  EXPECT_TRUE(result.ok);
  for (const auto& v : result.violations) ADD_FAILURE() << v;
}

TEST_P(GeoStoreTest, ConvergenceAuditAfterQuiescence) {
  GeoStore store(three_keys(), ReplicaMap::even(3, 3, 3), with_engine());
  store.session(0).put("alice:wall", "a");
  store.session(1).put("bob:wall", "b");
  store.flush();
  const auto report = store.audit_convergence();
  EXPECT_EQ(report.vars_checked, 3u);
  EXPECT_TRUE(report.converged());
}

TEST_P(GeoStoreTest, ConcurrentSessionsRemainCausal) {
  GeoStore::Options opts;
  opts.algorithm = Algorithm::kOptTrack;
  opts.max_delay_us = 300;
  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) keys.push_back("k" + std::to_string(i));
  GeoStore store(KeySpace(keys), ReplicaMap::even(4, 8, 2), with_engine(opts));
  std::vector<std::thread> clients;
  for (causal::SiteId s = 0; s < 4; ++s) {
    clients.emplace_back([&store, s] {
      auto session = store.session(s);
      for (int i = 0; i < 40; ++i) {
        const std::string key =
            "k" + std::to_string((s + static_cast<causal::SiteId>(i)) % 8);
        if (i % 3 == 0) {
          session.put(key, "v" + std::to_string(i));
        } else {
          (void)session.get(key);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  store.flush();
  const auto result = checker::check_causal_consistency(
      store.history(), store.replica_map());
  EXPECT_TRUE(result.ok);
  for (const auto& v : result.violations) ADD_FAILURE() << v;
}

}  // namespace
}  // namespace ccpr::store
