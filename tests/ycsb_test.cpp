#include "workload/ycsb.hpp"

#include <gtest/gtest.h>

namespace ccpr::workload {
namespace {

using causal::Operation;
using causal::ReplicaMap;

WorkloadSpec base_spec() {
  WorkloadSpec spec;
  spec.ops_per_site = 1000;
  spec.value_bytes = 100;
  spec.seed = 3;
  return spec;
}

double measured_write_rate(const causal::Program& program) {
  std::uint64_t writes = 0, total = 0;
  for (const auto& ops : program) {
    for (const auto& op : ops) {
      ++total;
      writes += op.kind == Operation::Kind::kWrite ? 1 : 0;
    }
  }
  return static_cast<double>(writes) / static_cast<double>(total);
}

TEST(YcsbTest, MixARoughlyHalfWrites) {
  const auto rmap = ReplicaMap::even(4, 50, 2);
  const auto p = generate_ycsb(YcsbMix::kA, base_spec(), rmap);
  EXPECT_NEAR(measured_write_rate(p), 0.5, 0.05);
}

TEST(YcsbTest, MixBReadMostly) {
  const auto rmap = ReplicaMap::even(4, 50, 2);
  const auto p = generate_ycsb(YcsbMix::kB, base_spec(), rmap);
  EXPECT_NEAR(measured_write_rate(p), 0.05, 0.02);
}

TEST(YcsbTest, MixCReadOnly) {
  const auto rmap = ReplicaMap::even(4, 50, 2);
  const auto p = generate_ycsb(YcsbMix::kC, base_spec(), rmap);
  EXPECT_DOUBLE_EQ(measured_write_rate(p), 0.0);
}

TEST(YcsbTest, MixFAlternatesReadThenWriteOnSameKey) {
  const auto rmap = ReplicaMap::even(4, 50, 2);
  const auto p = generate_ycsb(YcsbMix::kF, base_spec(), rmap);
  for (const auto& ops : p) {
    ASSERT_EQ(ops.size() % 2, 0u);
    for (std::size_t i = 0; i + 1 < ops.size(); i += 2) {
      EXPECT_EQ(ops[i].kind, Operation::Kind::kRead);
      EXPECT_EQ(ops[i + 1].kind, Operation::Kind::kWrite);
      EXPECT_EQ(ops[i].var, ops[i + 1].var);
    }
  }
}

TEST(YcsbTest, AllMixesAreZipfian) {
  // The hottest key should dominate under theta = 0.99.
  const auto rmap = ReplicaMap::even(2, 100, 1);
  for (const YcsbMix mix :
       {YcsbMix::kA, YcsbMix::kB, YcsbMix::kC, YcsbMix::kD}) {
    const auto p = generate_ycsb(mix, base_spec(), rmap);
    std::vector<int> counts(100, 0);
    for (const auto& op : p[0]) ++counts[op.var];
    EXPECT_GT(counts[0] + counts[1] + counts[2], 1000 / 5)
        << ycsb_name(mix);
  }
}

TEST(YcsbTest, NamesAreStable) {
  EXPECT_STREQ(ycsb_name(YcsbMix::kA), "YCSB-A");
  EXPECT_STREQ(ycsb_name(YcsbMix::kF), "YCSB-F");
}

TEST(YcsbTest, SpecPreservesBaseFields) {
  WorkloadSpec base = base_spec();
  base.locality = 0.7;
  const auto spec = ycsb_spec(YcsbMix::kB, base);
  EXPECT_DOUBLE_EQ(spec.locality, 0.7);
  EXPECT_EQ(spec.ops_per_site, 1000u);
  EXPECT_EQ(spec.value_bytes, 100u);
  EXPECT_DOUBLE_EQ(spec.write_rate, 0.05);
  EXPECT_EQ(spec.dist, WorkloadSpec::KeyDist::kZipf);
}

}  // namespace
}  // namespace ccpr::workload
