#include "causal/replica_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ccpr::causal {
namespace {

TEST(ReplicaMapTest, EvenPlacementShape) {
  const auto rm = ReplicaMap::even(5, 20, 3);
  EXPECT_EQ(rm.sites(), 5u);
  EXPECT_EQ(rm.vars(), 20u);
  EXPECT_DOUBLE_EQ(rm.replication_factor(), 3.0);
  EXPECT_FALSE(rm.fully_replicated());
  for (VarId x = 0; x < 20; ++x) {
    const auto reps = rm.replicas(x);
    EXPECT_EQ(reps.size(), 3u);
    EXPECT_TRUE(std::is_sorted(reps.begin(), reps.end()));
    // Ring placement: sites x, x+1, x+2 (mod 5).
    std::set<SiteId> expect{x % 5, (x + 1) % 5, (x + 2) % 5};
    std::set<SiteId> got(reps.begin(), reps.end());
    EXPECT_EQ(got, expect);
  }
}

TEST(ReplicaMapTest, EvenPlacementBalances) {
  const auto rm = ReplicaMap::even(5, 100, 2);
  for (SiteId s = 0; s < 5; ++s) {
    EXPECT_EQ(rm.vars_at(s).size(), 100u * 2 / 5);
  }
}

TEST(ReplicaMapTest, ReplicatedAtAgreesWithReplicas) {
  const auto rm = ReplicaMap::even(7, 30, 3);
  for (VarId x = 0; x < 30; ++x) {
    const auto reps = rm.replicas(x);
    for (SiteId s = 0; s < 7; ++s) {
      const bool in_list =
          std::find(reps.begin(), reps.end(), s) != reps.end();
      EXPECT_EQ(rm.replicated_at(x, s), in_list);
    }
  }
}

TEST(ReplicaMapTest, FullReplicationEverySiteHolds) {
  const auto rm = ReplicaMap::full(4, 10);
  EXPECT_TRUE(rm.fully_replicated());
  EXPECT_DOUBLE_EQ(rm.replication_factor(), 4.0);
  for (VarId x = 0; x < 10; ++x) {
    for (SiteId s = 0; s < 4; ++s) EXPECT_TRUE(rm.replicated_at(x, s));
  }
}

TEST(ReplicaMapTest, FetchTargetIsSelfWhenReplica) {
  const auto rm = ReplicaMap::even(5, 20, 2);
  for (VarId x = 0; x < 20; ++x) {
    for (const SiteId s : rm.replicas(x)) {
      EXPECT_EQ(rm.fetch_target(x, s), s);
    }
  }
}

TEST(ReplicaMapTest, FetchTargetIsAReplicaAndDeterministic) {
  const auto rm = ReplicaMap::even(6, 24, 2);
  for (VarId x = 0; x < 24; ++x) {
    for (SiteId s = 0; s < 6; ++s) {
      const SiteId t1 = rm.fetch_target(x, s);
      const SiteId t2 = rm.fetch_target(x, s);
      EXPECT_EQ(t1, t2);
      EXPECT_TRUE(rm.replicated_at(x, t1));
    }
  }
}

TEST(ReplicaMapTest, FetchTargetPrefersRingNearest) {
  // Var 0 in even(5, q, 2) lives at sites {0, 1}. Reader 4: ring distance
  // to 0 is 1, to 1 is 2 -> target 0.
  const auto rm = ReplicaMap::even(5, 5, 2);
  EXPECT_EQ(rm.fetch_target(0, 4), 0u);
  // Reader 2: distance to 0 is 3, to 1 is 4 -> target 0.
  EXPECT_EQ(rm.fetch_target(0, 2), 0u);
}

TEST(ReplicaMapTest, CustomPlacementSortsAndDedupes) {
  auto rm = ReplicaMap::custom(4, {{3, 1, 3}, {0}});
  EXPECT_EQ(rm.vars(), 2u);
  const auto reps = rm.replicas(0);
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(reps[0], 1u);
  EXPECT_EQ(reps[1], 3u);
  EXPECT_DOUBLE_EQ(rm.replication_factor(), 1.5);
}

TEST(ReplicaMapTest, SingleReplicaSingleSite) {
  const auto rm = ReplicaMap::even(1, 3, 1);
  EXPECT_TRUE(rm.fully_replicated());
  EXPECT_EQ(rm.fetch_target(2, 0), 0u);
}

// 4 sites in two "regions" {0,1} and {2,3}: near = 1, far = 100.
std::vector<std::uint32_t> two_region_distances() {
  const auto same = [](SiteId a, SiteId b) { return (a < 2) == (b < 2); };
  std::vector<std::uint32_t> d(16);
  for (SiteId i = 0; i < 4; ++i) {
    for (SiteId j = 0; j < 4; ++j) {
      d[i * 4 + j] = i == j ? 0 : (same(i, j) ? 1 : 100);
    }
  }
  return d;
}

TEST(ReplicaMapTest, PluggedDistancesRedirectFetchTarget) {
  // Var 0 at {1, 2}. Ring routing from reader 3 picks site 1 (ring
  // distance 2 vs 3); with the two-region matrix site 2 is near (same
  // region as 3) and wins.
  auto rm = ReplicaMap::custom(4, {{1, 2}});
  EXPECT_EQ(rm.fetch_target(0, 3), 1u);
  rm.set_site_distances(two_region_distances());
  EXPECT_TRUE(rm.has_site_distances());
  EXPECT_EQ(rm.site_distance(3, 2), 1u);
  EXPECT_EQ(rm.fetch_target(0, 3), 2u);
  // Reader 0 is in the other region: site 1 is its intra-region replica.
  EXPECT_EQ(rm.fetch_target(0, 0), 1u);
}

TEST(ReplicaMapTest, PluggedDistancesSelfStillWins) {
  auto rm = ReplicaMap::custom(4, {{1, 2}});
  rm.set_site_distances(two_region_distances());
  EXPECT_EQ(rm.fetch_target(0, 1), 1u);
  EXPECT_EQ(rm.fetch_target(0, 2), 2u);
}

TEST(ReplicaMapTest, RankedTargetsCycleNearFirst) {
  // Var 0 at {0, 1, 2}; reader 3 (region of {2,3}). Nearest is 2, then the
  // far replicas by ring distance from 3: site 0 (ring 1) before 1 (ring 2).
  auto rm = ReplicaMap::custom(4, {{0, 1, 2}});
  rm.set_site_distances(two_region_distances());
  EXPECT_EQ(rm.fetch_target_ranked(0, 3, 0), 2u);
  EXPECT_EQ(rm.fetch_target_ranked(0, 3, 1), 0u);
  EXPECT_EQ(rm.fetch_target_ranked(0, 3, 2), 1u);
  // Ranks wrap: every replica stays reachable under failover.
  EXPECT_EQ(rm.fetch_target_ranked(0, 3, 3), 2u);
  std::set<SiteId> seen;
  for (std::uint32_t r = 0; r < 3; ++r) {
    seen.insert(rm.fetch_target_ranked(0, 3, r));
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(ReplicaMapTest, EqualDistanceFallsBackToRingOrder) {
  // All distances equal: plugged routing must degrade to the classic ring
  // preference, not to site-id order.
  auto rm = ReplicaMap::custom(5, {{0, 1}});
  rm.set_site_distances(std::vector<std::uint32_t>(25, 7));
  EXPECT_EQ(rm.fetch_target(0, 4), 0u);  // ring distance 1 beats 2
}

TEST(ReplicaMapTest, VarsAtListsAscending) {
  const auto rm = ReplicaMap::even(4, 16, 2);
  for (SiteId s = 0; s < 4; ++s) {
    const auto vars = rm.vars_at(s);
    EXPECT_TRUE(std::is_sorted(vars.begin(), vars.end()));
    for (const VarId x : vars) EXPECT_TRUE(rm.replicated_at(x, s));
  }
}

}  // namespace
}  // namespace ccpr::causal
