#include "causal/matrix_clock.hpp"

#include <gtest/gtest.h>

namespace ccpr::causal {
namespace {

TEST(MatrixClockTest, StartsAtZero) {
  MatrixClock m(4);
  for (std::uint32_t j = 0; j < 4; ++j) {
    for (std::uint32_t k = 0; k < 4; ++k) EXPECT_EQ(m.at(j, k), 0u);
  }
}

TEST(MatrixClockTest, CellUpdates) {
  MatrixClock m(3);
  ++m.at(1, 2);
  m.at(0, 0) = 42;
  EXPECT_EQ(m.at(1, 2), 1u);
  EXPECT_EQ(m.at(0, 0), 42u);
  EXPECT_EQ(m.at(2, 1), 0u);
}

TEST(MatrixClockTest, MergeMaxIsElementwise) {
  MatrixClock a(2), b(2);
  a.at(0, 0) = 5;
  a.at(1, 1) = 1;
  b.at(0, 0) = 3;
  b.at(1, 1) = 9;
  b.at(0, 1) = 2;
  a.merge_max(b);
  EXPECT_EQ(a.at(0, 0), 5u);
  EXPECT_EQ(a.at(1, 1), 9u);
  EXPECT_EQ(a.at(0, 1), 2u);
}

TEST(MatrixClockTest, MergeIsIdempotentAndMonotone) {
  MatrixClock a(3), b(3);
  a.at(1, 0) = 7;
  b.at(2, 2) = 4;
  MatrixClock before = a;
  a.merge_max(b);
  a.merge_max(b);
  EXPECT_EQ(a.at(1, 0), 7u);
  EXPECT_EQ(a.at(2, 2), 4u);
  // Monotone: merged >= both inputs everywhere.
  for (std::uint32_t j = 0; j < 3; ++j) {
    for (std::uint32_t k = 0; k < 3; ++k) {
      EXPECT_GE(a.at(j, k), before.at(j, k));
      EXPECT_GE(a.at(j, k), b.at(j, k));
    }
  }
}

TEST(MatrixClockTest, WireRoundTrip) {
  MatrixClock m(3);
  m.at(0, 1) = 1;
  m.at(2, 0) = 300;
  m.at(1, 1) = 77;
  net::Encoder enc;
  m.encode(enc);
  net::Decoder dec(enc.buffer());
  const MatrixClock out = MatrixClock::decode(dec, 3);
  EXPECT_TRUE(dec.ok());
  EXPECT_EQ(out, m);
}

TEST(MatrixClockTest, EncodedSizeIsCompactForSmallCounts) {
  MatrixClock m(10);  // all zeros: 100 one-byte varints
  net::Encoder enc;
  m.encode(enc);
  EXPECT_EQ(enc.size(), 100u);
}

TEST(MatrixClockTest, ByteSize) {
  EXPECT_EQ(MatrixClock(4).byte_size(), 16u * 8u);
}

}  // namespace
}  // namespace ccpr::causal
