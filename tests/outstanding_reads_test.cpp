// Multiple outstanding remote reads from one site: the paper's model has a
// single sequential application process, but the protocol state machine
// itself must tolerate concurrent fetches (the driver, failover timers and
// deferred completions all create them).
#include <gtest/gtest.h>

#include "test_support.hpp"

namespace ccpr::causal {
namespace {

using ccpr::testing::constant_latency;

TEST(OutstandingReadsTest, TwoConcurrentFetchesResolveIndependently) {
  // Vars 0 and 1 live only at sites 1 and 2 respectively.
  auto rmap = ReplicaMap::custom(3, {{1}, {2}});
  SimCluster c(Algorithm::kOptTrack, std::move(rmap), constant_latency(5'000));
  c.write(1, 0, "from-1");
  c.write(2, 1, "from-2");
  c.run();
  std::string got0, got1;
  c.read_async(0, 0, [&](const Value& v) { got0 = v.data; });
  c.read_async(0, 1, [&](const Value& v) { got1 = v.data; });
  c.run();
  EXPECT_EQ(got0, "from-1");
  EXPECT_EQ(got1, "from-2");
  EXPECT_EQ(c.metrics().fetch_req_msgs, 2u);
  ccpr::testing::expect_causal(c);
}

TEST(OutstandingReadsTest, ManyFetchesToOneReplica) {
  auto rmap = ReplicaMap::custom(2, {{1}, {1}, {1}, {1}});
  SimCluster c(Algorithm::kFullTrack, std::move(rmap),
               constant_latency(2'000));
  for (VarId x = 0; x < 4; ++x) {
    c.write(1, x, "v" + std::to_string(x));
  }
  c.run();
  int done = 0;
  for (VarId x = 0; x < 4; ++x) {
    c.read_async(0, x, [&done, x](const Value& v) {
      EXPECT_EQ(v.data, "v" + std::to_string(x));
      ++done;
    });
  }
  c.run();
  EXPECT_EQ(done, 4);
  ccpr::testing::expect_causal(c);
}

TEST(OutstandingReadsTest, DeferredAndImmediateCompletionsCoexist) {
  // One read's completion is deferred by the local-coverage gate while a
  // second read of an independent variable completes immediately.
  // Topology: x at {1} only; y at {2} only; z at {0,1}.
  auto rmap = ReplicaMap::custom(3, {{1}, {2}, {0, 1}});
  auto opts = ccpr::testing::matrix_latency(3, {0, 1000, 1000,      //
                                                80'000, 0, 1000,    //
                                                1000, 1000, 0});
  SimCluster c(Algorithm::kOptTrack, std::move(rmap), std::move(opts));
  // s1 writes z (replicated at {0,1}) — slow channel 1->0 delays the update
  // — then writes x so x's metadata carries the z-obligation toward site 0.
  c.write(1, 2, "z-val");
  c.write(1, 0, "x-val");
  c.run_until(5'000);  // x applied at... x only at 1 (local), z in flight
  // Site 0 fetches x from s1: the response teaches it about z (destined to
  // site 0, not yet applied) -> completion deferred until z lands.
  std::string got_x, got_y;
  c.read_async(0, 0, [&](const Value& v) { got_x = v.data; });
  c.read_async(0, 1, [&](const Value& v) { got_y = v.data; });
  c.run();
  EXPECT_EQ(got_x, "x-val");
  EXPECT_TRUE(got_y.empty());  // y was never written: initial value
  EXPECT_EQ(c.site(0).peek(2).data, "z-val");  // arrived before x returned
  ccpr::testing::expect_causal(c);
}

}  // namespace
}  // namespace ccpr::causal
