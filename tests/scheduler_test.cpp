#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ccpr::sim {
namespace {

TEST(SchedulerTest, StartsAtTimeZeroIdle) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.run(), 0u);
}

TEST(SchedulerTest, FiresInTimestampOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_after(30, [&] { order.push_back(3); });
  s.schedule_after(10, [&] { order.push_back(1); });
  s.schedule_after(20, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(SchedulerTest, EqualTimestampsFireInScheduleOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_after(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SchedulerTest, ActionsMayScheduleMoreWork) {
  Scheduler s;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) s.schedule_after(10, chain);
  };
  s.schedule_after(0, chain);
  EXPECT_EQ(s.run(), 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.now(), 40);
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_after(10, [&] { order.push_back(1); });
  s.schedule_after(20, [&] { order.push_back(2); });
  s.schedule_after(30, [&] { order.push_back(3); });
  s.run_until(20);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, RunUntilAdvancesClockWhenIdle) {
  Scheduler s;
  s.run_until(1000);
  EXPECT_EQ(s.now(), 1000);
}

TEST(SchedulerTest, StepFiresOneEvent) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(1, [&] { ++fired; });
  s.schedule_after(2, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step());
}

TEST(SchedulerTest, ScheduleAtAbsoluteTime) {
  Scheduler s;
  std::int64_t seen = -1;
  s.schedule_at(123, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 123);
}

TEST(SchedulerTest, EventsFiredAccumulates) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_after(i, [] {});
  s.run();
  EXPECT_EQ(s.events_fired(), 7u);
  s.schedule_after(1, [] {});
  s.run();
  EXPECT_EQ(s.events_fired(), 8u);
}

}  // namespace
}  // namespace ccpr::sim
