#include "workload/hdfs.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace ccpr::workload {
namespace {

using causal::Operation;

TEST(HdfsWorkloadTest, ShapeMatchesSpec) {
  HdfsSpec spec;
  spec.sites = 6;
  spec.blocks = 30;
  spec.replication = 3;
  spec.tasks_per_site = 10;
  spec.reads_per_task = 4;
  const auto w = make_hdfs_workload(spec);
  EXPECT_EQ(w.rmap.sites(), 6u);
  EXPECT_EQ(w.rmap.vars(), 30u + 6u);  // inputs + one output per site
  for (causal::VarId x = 0; x < w.rmap.vars(); ++x) {
    EXPECT_EQ(w.rmap.replicas(x).size(), 3u);
  }
  for (causal::SiteId s = 0; s < 6; ++s) {
    EXPECT_EQ(w.program[s].size(), 10u * (4u + 1u));
  }
}

TEST(HdfsWorkloadTest, OutputBlocksAreLocalToTheirSite) {
  const auto w = make_hdfs_workload(HdfsSpec{});
  for (causal::SiteId s = 0; s < 8; ++s) {
    EXPECT_TRUE(w.rmap.replicated_at(w.output_base + s, s));
    for (const auto& op : w.program[s]) {
      if (op.kind == Operation::Kind::kWrite) {
        EXPECT_EQ(op.var, w.output_base + s);
      }
    }
  }
}

TEST(HdfsWorkloadTest, HighLocalityMeansMostlyLocalReads) {
  HdfsSpec spec;
  spec.locality = 0.95;
  spec.tasks_per_site = 100;
  const auto w = make_hdfs_workload(spec);
  std::uint64_t reads = 0, local = 0;
  for (causal::SiteId s = 0; s < spec.sites; ++s) {
    for (const auto& op : w.program[s]) {
      if (op.kind != Operation::Kind::kRead) continue;
      ++reads;
      local += w.rmap.replicated_at(op.var, s) ? 1u : 0u;
    }
  }
  EXPECT_GT(static_cast<double>(local) / static_cast<double>(reads), 0.9);
}

TEST(HdfsWorkloadTest, RunsCausallyOnOptTrack) {
  HdfsSpec spec;
  spec.sites = 5;
  spec.blocks = 20;
  spec.tasks_per_site = 15;
  spec.seed = 5;
  auto w = make_hdfs_workload(spec);
  causal::SimCluster::Options opts;
  opts.latency = std::make_unique<sim::UniformLatency>(2'000, 20'000);
  causal::SimCluster c(causal::Algorithm::kOptTrack, std::move(w.rmap),
                       std::move(opts));
  c.run_program(w.program);
  EXPECT_EQ(c.pending_updates(), 0u);
  ccpr::testing::expect_causal(c);
  // The §V claim this workload exists for: with high locality and a small
  // constant replication factor, remote reads are rare.
  const auto m = c.metrics();
  EXPECT_LT(static_cast<double>(m.remote_reads),
            0.35 * static_cast<double>(m.reads));
}

TEST(HdfsWorkloadTest, DeterministicPerSeed) {
  const auto a = make_hdfs_workload(HdfsSpec{});
  const auto b = make_hdfs_workload(HdfsSpec{});
  for (causal::SiteId s = 0; s < 8; ++s) {
    ASSERT_EQ(a.program[s].size(), b.program[s].size());
    for (std::size_t i = 0; i < a.program[s].size(); ++i) {
      EXPECT_EQ(a.program[s][i].var, b.program[s][i].var);
    }
  }
}

}  // namespace
}  // namespace ccpr::workload
