// RemoteFetch freshness gating (DESIGN.md §6).
//
// The paper's pseudo-code answers a RemoteFetch from the pre-designated
// replica immediately. If that replica lags behind the reader's causal past,
// the returned value is causally stale. These tests construct that race
// deterministically: with gating disabled the checker flags the stale read
// (reproducing the gap); with gating enabled (our default) the response is
// delayed until the replica has caught up.
#include <gtest/gtest.h>

#include "checker/causal_checker.hpp"
#include "test_support.hpp"

namespace ccpr::causal {
namespace {

using ccpr::testing::matrix_latency;

// Topology: x lives only at s1, y lives only at s2.
//   s0: w(x)a  [slow channel s0->s1],  w(y)b  [fast channel s0->s2]
//   s2: r(y)=b  (so w(x)a is now in s2's causal past),  r(x) via fetch to s1
// Without gating s1 answers before a arrives: r(x) returns the initial
// value — a causal violation.
SimCluster::Options race_options(bool gating) {
  auto opts = matrix_latency(3, {0, 80'000, 1000,  //
                                 1000, 0, 1000,    //
                                 1000, 1000, 0});
  opts.protocol.fetch_gating = gating;
  return opts;
}

ReplicaMap race_rmap() { return ReplicaMap::custom(3, {{1}, {2}}); }

TEST(FetchGatingTest, UngatedFetchCanViolateCausality) {
  SimCluster c(Algorithm::kOptTrack, race_rmap(), race_options(false));
  c.write(0, 0, "a");  // x: slow to s1
  c.write(0, 1, "b");  // y: fast to s2
  c.run_until(10'000);
  ASSERT_EQ(c.site(2).peek(1).data, "b");
  ASSERT_EQ(c.read(2, 1).data, "b");      // r(y)b: w(x)a joins causal past
  const Value stale = c.read(2, 0);       // fetch from lagging s1
  EXPECT_TRUE(stale.id.is_initial());     // the paper-faithful behaviour
  c.run();
  const auto result = checker::check_causal_consistency(
      c.history(), c.replica_map());
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violations[0].find("stale read"), std::string::npos);
}

TEST(FetchGatingTest, GatedFetchWaitsForFreshValue) {
  SimCluster c(Algorithm::kOptTrack, race_rmap(), race_options(true));
  c.write(0, 0, "a");
  c.write(0, 1, "b");
  c.run_until(10'000);
  ASSERT_EQ(c.read(2, 1).data, "b");
  const Value fresh = c.read(2, 0);  // blocks until s1 applies a
  EXPECT_EQ(fresh.data, "a");
  EXPECT_EQ(fresh.id, (WriteId{0, 1}));
  c.run();
  ccpr::testing::expect_causal(c);
}

TEST(FetchGatingTest, FullTrackUngatedAlsoRacy) {
  SimCluster c(Algorithm::kFullTrack, race_rmap(), race_options(false));
  c.write(0, 0, "a");
  c.write(0, 1, "b");
  c.run_until(10'000);
  ASSERT_EQ(c.read(2, 1).data, "b");
  EXPECT_TRUE(c.read(2, 0).id.is_initial());
  c.run();
  EXPECT_FALSE(
      checker::check_causal_consistency(c.history(), c.replica_map()).ok);
}

TEST(FetchGatingTest, FullTrackGatedWaits) {
  SimCluster c(Algorithm::kFullTrack, race_rmap(), race_options(true));
  c.write(0, 0, "a");
  c.write(0, 1, "b");
  c.run_until(10'000);
  ASSERT_EQ(c.read(2, 1).data, "b");
  EXPECT_EQ(c.read(2, 0).data, "a");
  c.run();
  ccpr::testing::expect_causal(c);
}

TEST(FetchGatingTest, GatingIdleWhenNoCausalDependency) {
  // A reader with no causal knowledge of pending writes is answered
  // immediately even with gating on.
  SimCluster c(Algorithm::kOptTrack, race_rmap(), race_options(true));
  c.write(0, 0, "a");
  c.run_until(2'000);              // a still in flight to s1
  const Value v = c.read(2, 0);    // s2 knows nothing about a
  EXPECT_TRUE(v.id.is_initial());  // immediate, legal answer
  c.run();
  ccpr::testing::expect_causal(c);
}

}  // namespace
}  // namespace ccpr::causal
