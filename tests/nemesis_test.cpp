// Nemesis test: a real 3-process cluster driven through repeated fault
// rounds — partition (via the chaos admin op), SIGKILL + restart, and a
// slow lossy link — while recorded client sessions keep operating with
// retry + failover enabled. The contract under test, matching the fault
// model in docs/RUNTIMES.md:
//
//   * every operation either succeeds (possibly after a transparent
//     failover to another site) or fails fast with a typed client::Error
//     well before the operation deadline — nothing hangs;
//   * a read-only session at a fully partitioned site with failover
//     enabled sees ~zero errors, while the same workload without retry
//     fails (the availability win is measurable);
//   * the failure detector surfaces the partition (suspected peers in
//     kStatus) and clears it after heal;
//   * after all faults heal, every replica converges (convergent LWW) and
//     the recorded history passes the offline causal checker —
//     indeterminate (maybe-executed) puts included.
//
// Round count scales with CCPR_NEMESIS_ROUNDS (default 3; CI short mode
// uses 2). The server binary path is injected by CMake as CCPR_SERVER_BIN.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "checker/causal_checker.hpp"
#include "checker/recorder.hpp"
#include "client/client.hpp"
#include "net/chaos.hpp"
#include "net/socket.hpp"
#include "server/cluster_config.hpp"
#include "util/rng.hpp"

namespace ccpr {
namespace {

using namespace std::chrono_literals;

std::vector<std::uint16_t> pick_ports(std::size_t n) {
  std::vector<net::Socket> held;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint16_t port = 0;
    held.push_back(net::tcp_listen("127.0.0.1", 0, &port));
    EXPECT_TRUE(held.back().valid());
    ports.push_back(port);
  }
  return ports;
}

class ServerProcess {
 public:
  ServerProcess() = default;
  ~ServerProcess() { terminate(); }

  void spawn(const std::string& config_path, causal::SiteId site,
             const std::vector<std::string>& extra_flags = {}) {
    ASSERT_EQ(pid_, -1);
    std::vector<std::string> argv_strs = {
        CCPR_SERVER_BIN, "--config=" + config_path,
        "--site=" + std::to_string(site)};
    for (const auto& f : extra_flags) argv_strs.push_back(f);
    std::vector<char*> argv;
    for (auto& s : argv_strs) argv.push_back(s.data());
    argv.push_back(nullptr);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::execv(CCPR_SERVER_BIN, argv.data());
      ::_exit(127);  // exec failed
    }
    pid_ = pid;
  }

  void kill_hard() {
    if (pid_ < 0) return;
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

  void terminate() {
    if (pid_ < 0) return;
    ::kill(pid_, SIGTERM);
    int status = 0;
    for (int i = 0; i < 500; ++i) {
      if (::waitpid(pid_, &status, WNOHANG) == pid_) {
        pid_ = -1;
        return;
      }
      std::this_thread::sleep_for(10ms);
    }
    kill_hard();
  }

  bool running() const { return pid_ >= 0; }

 private:
  pid_t pid_ = -1;
};

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/ccpr_nemesis_XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    if (p) path_ = p;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(50ms);
  }
  return pred();
}

/// Can we complete a ping against `site` right now?
bool pingable(const server::ClusterConfig& cfg, causal::SiteId site) {
  try {
    client::Client::Options copts;
    copts.connect_timeout = 500ms;
    copts.request_timeout = 2000ms;
    copts.retry.enabled = false;
    client::Client cli(cfg, site, copts);
    cli.ping();
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

struct SessionOutcome {
  std::size_t ok = 0;
  std::size_t errors = 0;
  std::chrono::milliseconds slowest_op{0};
};

/// One recorded causal session: `ops` seeded put/get ops starting at
/// `site`, with retry + failover on. Every op must either succeed or throw
/// a typed client::Error within the op deadline (plus scheduling slack) —
/// an op that hangs longer fails the test on the spot.
SessionOutcome run_session(const server::ClusterConfig& cfg,
                           causal::SiteId site,
                           checker::HistoryRecorder* rec, std::uint64_t seed,
                           std::size_t ops, double write_rate) {
  constexpr auto kOpDeadline = 6s;
  constexpr auto kSlack = 6s;
  SessionOutcome out;
  client::Client::Options copts;
  copts.recorder = rec;
  copts.connect_timeout = 1000ms;
  copts.request_timeout = 2000ms;
  copts.retry.enabled = true;
  copts.retry.failover = true;
  copts.retry.op_deadline =
      std::chrono::duration_cast<std::chrono::milliseconds>(kOpDeadline);
  std::unique_ptr<client::Client> cli;
  try {
    cli = std::make_unique<client::Client>(cfg, site, copts);
  } catch (const client::Error&) {
    // The whole site may be down before the first op; that counts as one
    // typed failure, not a test bug.
    out.errors = ops;
    return out;
  }
  util::Rng rng(seed);
  const std::uint32_t q = cfg.vars;
  for (std::size_t i = 0; i < ops; ++i) {
    const auto x = static_cast<causal::VarId>(rng.below(q));
    const auto t0 = std::chrono::steady_clock::now();
    try {
      if (rng.chance(write_rate)) {
        cli->put(x, "s" + std::to_string(site) + "-" + std::to_string(seed) +
                        "-" + std::to_string(i));
      } else {
        (void)cli->get(x);
      }
      ++out.ok;
    } catch (const client::Error&) {
      ++out.errors;
    }
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);
    out.slowest_op = std::max(out.slowest_op, elapsed);
    EXPECT_LT(elapsed, kOpDeadline + kSlack)
        << "op " << i << " at site " << site << " blew through the deadline";
  }
  return out;
}

client::Client admin(const server::ClusterConfig& cfg, causal::SiteId site) {
  client::Client::Options copts;
  copts.connect_timeout = 1000ms;
  copts.request_timeout = 2000ms;
  copts.retry.enabled = false;
  return client::Client(cfg, site, copts);
}

/// Parameterized over the engine-shard count: the full nemesis schedule
/// (partition, SIGKILL + WAL restart, slow links) must hold with sharded
/// engines too — per-shard WALs recover, cross-shard envelopes drain after
/// heal, and the checker accepts the history either way.
class NemesisTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(NemesisTest, ClusterSurvivesPartitionKillAndSlowLinkRounds) {
  int rounds = 3;
  if (const char* env = std::getenv("CCPR_NEMESIS_ROUNDS")) {
    rounds = std::max(1, std::atoi(env));
  }

  const std::uint32_t n = 3, q = 9, p = 2;
  const auto ports = pick_ports(2 * n);
  auto cfg = server::ClusterConfig::loopback(n, q, p, 0);
  for (std::uint32_t s = 0; s < n; ++s) {
    cfg.sites[s].peer_port = ports[s];
    cfg.sites[s].client_port = ports[n + s];
  }
  cfg.protocol.engine_shards = GetParam();
  cfg.algorithm = causal::Algorithm::kOptTrack;
  cfg.protocol.convergent = true;  // LWW, so healed replicas agree
  cfg.protocol.fetch_timeout_us = 150'000;
  cfg.catchup_interval_ms = 100;
  cfg.catchup_timeout_ms = 2'000;
  cfg.heartbeat_interval_us = 50'000;
  cfg.suspect_after_us = 400'000;
  cfg.peer_queue_cap = 256;

  TempDir data_dir;
  char path[] = "/tmp/ccpr_nemesis_cfg_XXXXXX";
  const int cfd = ::mkstemp(path);
  ASSERT_GE(cfd, 0);
  ::close(cfd);
  {
    std::ofstream out(path);
    out << cfg.to_text();
  }
  const std::vector<std::string> flags = {"--data-dir=" + data_dir.path(),
                                          "--wal-sync=batch"};

  std::vector<std::unique_ptr<ServerProcess>> procs;
  for (causal::SiteId s = 0; s < n; ++s) {
    procs.push_back(std::make_unique<ServerProcess>());
    procs.back()->spawn(path, s, flags);
  }
  for (causal::SiteId s = 0; s < n; ++s) {
    ASSERT_TRUE(eventually([&] { return pingable(cfg, s); }, 15'000ms))
        << "site " << s << " never came up";
  }

  checker::HistoryRecorder recorder;
  util::Rng seeds(0xee);

  // Warm-up: every site serves a mixed session with the cluster healthy.
  for (causal::SiteId s = 0; s < n; ++s) {
    const auto r = run_session(cfg, s, &recorder, seeds.next(), 15, 0.5);
    EXPECT_EQ(r.errors, 0u) << "healthy-cluster session failed at " << s;
  }

  for (int round = 0; round < rounds; ++round) {
    const auto victim =
        static_cast<causal::SiteId>(static_cast<std::uint32_t>(round) % n);
    const auto healthy = static_cast<causal::SiteId>((victim + 1) % n);
    const int mode = round % 3;
    SCOPED_TRACE("round " + std::to_string(round) + " victim " +
                 std::to_string(victim) + " mode " + std::to_string(mode));

    if (mode == 0) {
      // ---- full partition of the victim, via the chaos admin op ----
      {
        net::ChaosRule rule;
        rule.partition = true;
        admin(cfg, victim).chaos_set(rule);  // all peers
      }
      // The failure detector on a healthy site flags the victim.
      ASSERT_TRUE(eventually(
          [&] {
            auto st = admin(cfg, healthy).status();
            return std::find(st.suspected_peers.begin(),
                             st.suspected_peers.end(),
                             victim) != st.suspected_peers.end();
          },
          5'000ms))
          << "victim never suspected";

      // Baseline: a read-only, no-retry session pinned to the victim.
      // Remote reads hit kUnavailable fast-fails (every replica of a
      // non-local var is suspected) — errors are guaranteed.
      std::size_t baseline_errors = 0;
      {
        client::Client::Options copts;
        copts.connect_timeout = 1000ms;
        copts.request_timeout = 2000ms;
        copts.retry.enabled = false;
        client::Client bare(cfg, victim, copts);
        for (causal::VarId x = 0; x < q; ++x) {
          try {
            (void)bare.get(x);
          } catch (const client::Error&) {
            ++baseline_errors;
          }
        }
      }
      EXPECT_GT(baseline_errors, 0u)
          << "partition produced no errors without retry?";

      // The same read-only workload with retry + failover: the session
      // abandons the partitioned site and finishes clean.
      std::size_t failover_errors = 0;
      std::uint64_t failovers = 0;
      {
        client::Client::Options copts;
        copts.connect_timeout = 1000ms;
        copts.request_timeout = 2000ms;
        copts.retry.enabled = true;
        copts.retry.failover = true;
        copts.retry.op_deadline = 6'000ms;
        client::Client cli(cfg, victim, copts);
        for (causal::VarId x = 0; x < q; ++x) {
          try {
            (void)cli.get(x);
          } catch (const client::Error&) {
            ++failover_errors;
          }
        }
        failovers = cli.failovers();
      }
      EXPECT_EQ(failover_errors, 0u) << "failover did not mask the partition";
      EXPECT_GE(failovers, 1u);

      // Meanwhile healthy sites keep serving recorded mixed sessions.
      for (causal::SiteId s = 0; s < n; ++s) {
        if (s == victim) continue;
        const auto r = run_session(cfg, s, &recorder, seeds.next(), 12, 0.5);
        EXPECT_EQ(r.errors, 0u) << "healthy site " << s << " failed";
      }

      // Heal and wait for suspicion to clear everywhere.
      admin(cfg, victim).chaos_clear();
      ASSERT_TRUE(eventually(
          [&] { return admin(cfg, healthy).status().suspected_peers.empty(); },
          10'000ms));
    } else if (mode == 1) {
      // ---- SIGKILL the victim mid-session, then restart it ----
      std::thread killer([&] {
        std::this_thread::sleep_for(150ms);
        procs[victim]->kill_hard();
      });
      // A recorded session pinned to the victim rides through the crash:
      // retried/indeterminate puts are recorded as maybe-writes, reads
      // fail over. Errors are tolerated (a put acked but not yet
      // propagated pins the session's causal past to the dead site);
      // what's asserted inside run_session is the deadline bound.
      const auto r = run_session(cfg, victim, &recorder, seeds.next(), 25,
                                 0.4);
      killer.join();
      EXPECT_GT(r.ok, 0u) << "no op survived the crash round";

      // Survivors keep working while the victim is down.
      const auto rh = run_session(cfg, healthy, &recorder, seeds.next(), 12,
                                  0.5);
      EXPECT_EQ(rh.errors, 0u);

      procs[victim]->spawn(path, victim, flags);
      ASSERT_TRUE(eventually([&] { return pingable(cfg, victim); },
                             20'000ms))
          << "victim did not restart";
    } else {
      // ---- slow, lossy link from the victim toward everyone ----
      {
        net::ChaosRule rule;
        rule.drop_milli = 200;  // 20% loss
        rule.delay_us = 20'000;
        admin(cfg, victim).chaos_set(rule);
      }
      for (causal::SiteId s = 0; s < n; ++s) {
        const auto r = run_session(cfg, s, &recorder, seeds.next(), 12, 0.5);
        // Slow/lossy is degraded, not partitioned: ops may retry but the
        // deadline bound inside run_session must hold.
        EXPECT_GT(r.ok, 0u) << "site " << s << " served nothing";
      }
      admin(cfg, victim).chaos_clear();
    }
  }

  // Quiescence: all faults healed, all processes up. Every replica of
  // every var must converge to one value (convergent LWW + catch-up).
  for (causal::SiteId s = 0; s < n; ++s) {
    ASSERT_TRUE(eventually([&] { return pingable(cfg, s); }, 10'000ms));
  }
  const auto rmap = cfg.replica_map();
  ASSERT_TRUE(eventually(
      [&] {
        try {
          std::vector<client::Client> clis;
          for (causal::SiteId s = 0; s < n; ++s) clis.push_back(admin(cfg, s));
          for (causal::VarId x = 0; x < q; ++x) {
            std::string want;
            bool first = true;
            for (const auto s : rmap.replicas(x)) {
              const auto v = clis[s].get(x).data;
              if (first) {
                want = v;
                first = false;
              } else if (v != want) {
                return false;
              }
            }
          }
          return true;
        } catch (const std::exception&) {
          return false;
        }
      },
      30'000ms))
      << "replicas never converged after heal";

  // The offline checker accepts the whole recorded history. Delivery
  // completeness is not required (histories were cut by design), and
  // maybe-executed puts are tolerated via their kWriteMaybe records.
  checker::CheckOptions copts;
  copts.require_complete_delivery = false;
  const auto result =
      checker::check_causal_consistency(recorder, rmap, copts);
  EXPECT_TRUE(result.ok);
  for (const auto& v : result.violations) ADD_FAILURE() << v;
}

INSTANTIATE_TEST_SUITE_P(EngineShards, NemesisTest,
                         ::testing::Values(1u, 4u),
                         [](const auto& info) {
                           return "shards" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ccpr
