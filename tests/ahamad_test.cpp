#include "causal/ahamad.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace ccpr::causal {
namespace {

using ccpr::testing::applies_at;
using ccpr::testing::constant_latency;
using ccpr::testing::expect_causal;
using ccpr::testing::index_of;
using ccpr::testing::matrix_latency;

TEST(AhamadTest, BasicReplicationAndFifo) {
  SimCluster c(Algorithm::kAhamad, ReplicaMap::full(3, 2),
               constant_latency(100));
  c.write(0, 0, "a");
  c.write(0, 1, "b");
  c.run();
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(c.site(s).peek(0).data, "a");
    EXPECT_EQ(c.site(s).peek(1).data, "b");
  }
  expect_causal(c);
}

TEST(AhamadTest, CausalChainRespected) {
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(Algorithm::kAhamad, ReplicaMap::full(3, 2), std::move(opts));
  c.write(0, 0, "a");
  c.run_until(5'000);
  ASSERT_EQ(c.read(1, 0).data, "a");
  c.write(1, 1, "b");
  c.run();
  const auto seq = applies_at(c.history(), 2);
  EXPECT_LT(index_of(seq, WriteId{0, 1}), index_of(seq, WriteId{1, 1}));
  expect_causal(c);
}

TEST(AhamadTest, ExhibitsFalseCausality) {
  // s1 RECEIVES s0's update but never reads it, then writes. Under A_ORG
  // the receipt still binds: s2 must wait for a before applying b — the
  // false causality that Full-Track's A_OPT avoids (see
  // FullTrackTest.NoFalseCausalityWithoutRead for the contrast).
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(Algorithm::kAhamad, ReplicaMap::full(3, 2), std::move(opts));
  c.write(0, 0, "a");
  c.run_until(5'000);  // s1 applied a; s2 did not
  c.write(1, 1, "b");  // no read — but A_ORG still orders b after a
  c.run();
  const auto seq = applies_at(c.history(), 2);
  const auto ia = index_of(seq, WriteId{0, 1});
  const auto ib = index_of(seq, WriteId{1, 1});
  ASSERT_GE(ia, 0);
  ASSERT_GE(ib, 0);
  EXPECT_LT(ia, ib);  // b waited for a: false causality
  expect_causal(c);
}

TEST(AhamadTest, ConstantMetadataFootprint) {
  SimCluster c(Algorithm::kAhamad, ReplicaMap::full(4, 8),
               constant_latency(100));
  const auto before = c.site(0).meta_state_bytes();
  for (int i = 0; i < 20; ++i) c.write(0, static_cast<VarId>(i % 8), "v");
  c.run();
  EXPECT_EQ(c.site(0).meta_state_bytes(), before);  // one n-vector, always
  expect_causal(c);
}

TEST(AhamadTest, RequiresFullReplication) {
  EXPECT_DEATH(
      {
        SimCluster c(Algorithm::kAhamad, ReplicaMap::even(3, 3, 2),
                     constant_latency(10));
      },
      "Precondition");
}

}  // namespace
}  // namespace ccpr::causal
