#include "util/timer_thread.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "causal/threaded_cluster.hpp"
#include "checker/causal_checker.hpp"

namespace ccpr::util {
namespace {

TEST(TimerThreadTest, FiresScheduledCallback) {
  TimerThread t;
  t.start();
  std::atomic<bool> fired{false};
  t.schedule_after(1'000, [&] { fired = true; });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (!fired && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(fired);
  t.stop();
}

TEST(TimerThreadTest, FiresInDeadlineOrder) {
  TimerThread t;
  t.start();
  std::mutex mu;
  std::vector<int> order;
  std::atomic<int> done{0};
  t.schedule_after(30'000, [&] {
    std::lock_guard lk(mu);
    order.push_back(3);
    ++done;
  });
  t.schedule_after(5'000, [&] {
    std::lock_guard lk(mu);
    order.push_back(1);
    ++done;
  });
  t.schedule_after(15'000, [&] {
    std::lock_guard lk(mu);
    order.push_back(2);
    ++done;
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while (done < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  std::lock_guard lk(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  t.stop();
}

TEST(TimerThreadTest, StopDiscardsPendingTimers) {
  TimerThread t;
  t.start();
  std::atomic<bool> fired{false};
  t.schedule_after(60'000'000, [&] { fired = true; });  // one minute out
  EXPECT_EQ(t.pending(), 1u);
  t.stop();
  EXPECT_EQ(t.pending(), 0u);
  EXPECT_FALSE(fired);
}

TEST(TimerThreadTest, StopIsIdempotentAndRestartable) {
  TimerThread t;
  t.start();
  t.stop();
  t.stop();
  t.start();
  std::atomic<bool> fired{false};
  t.schedule_after(500, [&] { fired = true; });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (!fired && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(fired);
  t.stop();
}

// End to end: the §V failover also works on the threaded runtime now that
// it has timers.
TEST(TimerThreadTest, ThreadedClusterFetchFailover) {
  using namespace ccpr::causal;
  ThreadedCluster::Options opts;
  opts.protocol.fetch_timeout_us = 20'000;  // 20ms wall time
  opts.max_delay_us = 0;
  // Var 0 at {1, 2}; reader 0 prefers site 1.
  ThreadedCluster c(Algorithm::kOptTrack,
                    ReplicaMap::custom(3, {{1, 2}}), opts);
  c.write(2, 0, "hot-standby");
  c.drain();
  // No crash support on the threaded runtime; verify the healthy path has
  // zero retries and the timer machinery stays silent.
  EXPECT_EQ(c.read(0, 0).data, "hot-standby");
  c.drain();
  EXPECT_EQ(c.metrics().fetch_retries, 0u);
  const auto result =
      checker::check_causal_consistency(c.history(), c.replica_map());
  EXPECT_TRUE(result.ok);
}

}  // namespace
}  // namespace ccpr::util
