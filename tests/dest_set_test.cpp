#include "causal/dest_set.hpp"

#include <gtest/gtest.h>

namespace ccpr::causal {
namespace {

TEST(DestSetTest, InitializerListNormalizes) {
  DestSet d{3, 1, 2, 1, 3};
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.items(), (std::vector<SiteId>{1, 2, 3}));
}

TEST(DestSetTest, ContainsAndEmpty) {
  DestSet d{5, 7};
  EXPECT_TRUE(d.contains(5));
  EXPECT_TRUE(d.contains(7));
  EXPECT_FALSE(d.contains(6));
  EXPECT_FALSE(d.empty());
  EXPECT_TRUE(DestSet{}.empty());
}

TEST(DestSetTest, InsertKeepsSortedUnique) {
  DestSet d;
  d.insert(5);
  d.insert(1);
  d.insert(5);
  d.insert(3);
  EXPECT_EQ(d.items(), (std::vector<SiteId>{1, 3, 5}));
}

TEST(DestSetTest, EraseMissingIsNoop) {
  DestSet d{1, 2};
  d.erase(9);
  EXPECT_EQ(d.size(), 2u);
  d.erase(1);
  EXPECT_EQ(d.items(), (std::vector<SiteId>{2}));
}

TEST(DestSetTest, SubtractSpan) {
  DestSet d{1, 2, 3, 4, 5};
  const SiteId other[] = {2, 4, 9};
  d.subtract(std::span<const SiteId>(other, 3));
  EXPECT_EQ(d.items(), (std::vector<SiteId>{1, 3, 5}));
}

TEST(DestSetTest, SubtractSelfEmpties) {
  DestSet d{1, 2};
  d.subtract(d.span());
  // Subtracting a view of itself must be safe because subtract compacts in
  // place without reallocation.
  EXPECT_TRUE(d.empty());
}

TEST(DestSetTest, IntersectKeepsCommon) {
  DestSet a{1, 2, 3, 5};
  DestSet b{2, 3, 4};
  a.intersect(b);
  EXPECT_EQ(a.items(), (std::vector<SiteId>{2, 3}));
}

TEST(DestSetTest, IntersectWithEmptyIsEmpty) {
  DestSet a{1, 2};
  a.intersect(DestSet{});
  EXPECT_TRUE(a.empty());
}

TEST(DestSetTest, FromSortedSpan) {
  const SiteId sites[] = {0, 4, 8};
  DestSet d{std::span<const SiteId>(sites, 3)};
  EXPECT_EQ(d.size(), 3u);
  EXPECT_TRUE(d.contains(4));
}

TEST(DestSetTest, EqualityComparesContents) {
  EXPECT_EQ((DestSet{1, 2}), (DestSet{2, 1}));
  EXPECT_NE((DestSet{1}), (DestSet{1, 2}));
}

}  // namespace
}  // namespace ccpr::causal
