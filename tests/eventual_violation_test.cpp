// The Eventual baseline applies updates on receipt. It must (a) still
// deliver everything, and (b) violate causal consistency under the classic
// reordering race — which doubles as an end-to-end proof that the checker
// catches real protocol bugs, not just hand-built histories.
#include <gtest/gtest.h>

#include "checker/causal_checker.hpp"
#include "test_support.hpp"

namespace ccpr::causal {
namespace {

using ccpr::testing::applies_at;
using ccpr::testing::index_of;
using ccpr::testing::matrix_latency;

TEST(EventualTest, DeliversEverythingEventually) {
  SimCluster c(Algorithm::kEventual, ReplicaMap::even(4, 8, 2),
               ccpr::testing::constant_latency(500));
  for (SiteId s = 0; s < 4; ++s) c.write(s, s, "v");
  c.run();
  EXPECT_EQ(c.pending_updates(), 0u);
  // Delivery completeness holds even though causality may not.
  checker::CheckOptions opts;
  const auto r =
      checker::check_causal_consistency(c.history(), c.replica_map(), opts);
  for (const auto& v : r.violations) {
    EXPECT_EQ(v.find("lost update"), std::string::npos) << v;
  }
}

TEST(EventualTest, ViolatesCausalApplyOrder) {
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(Algorithm::kEventual, ReplicaMap::full(3, 2),
               std::move(opts));
  c.write(0, 0, "a");
  c.run_until(5'000);
  ASSERT_EQ(c.read(1, 0).data, "a");
  c.write(1, 1, "b");  // causally after a, but will reach s2 first
  c.run();
  const auto seq = applies_at(c.history(), 2);
  EXPECT_LT(index_of(seq, WriteId{1, 1}), index_of(seq, WriteId{0, 1}));
  const auto result =
      checker::check_causal_consistency(c.history(), c.replica_map());
  ASSERT_FALSE(result.ok);
  bool found = false;
  for (const auto& v : result.violations) {
    found |= v.find("causal apply violation") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(EventualTest, StaleReadDetectedByChecker) {
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(Algorithm::kEventual, ReplicaMap::full(3, 2),
               std::move(opts));
  c.write(0, 0, "a");
  c.run_until(5'000);
  ASSERT_EQ(c.read(1, 0).data, "a");
  c.write(1, 1, "b");
  c.run_until(10'000);  // b reached s2; a did not
  ASSERT_EQ(c.read(2, 1).data, "b");
  EXPECT_TRUE(c.read(2, 0).id.is_initial());  // stale
  c.run();
  const auto result =
      checker::check_causal_consistency(c.history(), c.replica_map());
  ASSERT_FALSE(result.ok);
  bool found = false;
  for (const auto& v : result.violations) {
    found |= v.find("stale read") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(EventualTest, ZeroMetadataOverhead) {
  SimCluster c(Algorithm::kEventual, ReplicaMap::full(4, 2),
               ccpr::testing::constant_latency(100));
  c.write(0, 0, std::string(100, 'x'));
  c.run();
  EXPECT_EQ(c.site(0).meta_state_bytes(), 0u);
  // Control bytes are just framing (var id + write identity), no clocks.
  EXPECT_LT(c.metrics().control_bytes_per_message(), 12.0);
}

}  // namespace
}  // namespace ccpr::causal
