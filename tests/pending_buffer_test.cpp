#include <gtest/gtest.h>

#include <vector>

#include "causal/protocol_base.hpp"

namespace ccpr::causal {
namespace {

struct Item {
  int id;
  int needs;  // becomes ready once level >= needs
};

struct Harness {
  PendingBuffer<Item> buf;
  int level = 0;
  std::vector<int> applied;

  void submit(Item item) {
    buf.submit(
        std::move(item), [this](const Item& i) { return level >= i.needs; },
        [this](Item&& i) { apply(std::move(i)); });
  }

  void apply(Item&& i) {
    applied.push_back(i.id);
    // Applying raises the level — like an apply satisfying predicates.
    level = std::max(level, i.id);
  }

  void raise(int to) {
    level = std::max(level, to);
    buf.drain([this](const Item& i) { return level >= i.needs; },
              [this](Item&& i) { apply(std::move(i)); });
  }
};

TEST(PendingBufferTest, ReadyItemAppliesImmediately) {
  Harness h;
  h.submit({1, 0});
  EXPECT_EQ(h.applied, (std::vector<int>{1}));
  EXPECT_EQ(h.buf.size(), 0u);
}

TEST(PendingBufferTest, NotReadyItemIsBuffered) {
  Harness h;
  h.submit({5, 3});
  EXPECT_TRUE(h.applied.empty());
  EXPECT_EQ(h.buf.size(), 1u);
  h.raise(3);
  EXPECT_EQ(h.applied, (std::vector<int>{5}));
}

TEST(PendingBufferTest, CascadingUnblock) {
  // Applying item 3 raises level to 3, which unblocks 4, which unblocks 5.
  Harness h;
  h.submit({5, 4});
  h.submit({4, 3});
  EXPECT_EQ(h.buf.size(), 2u);
  h.submit({3, 0});  // ready now; its apply raises the level
  EXPECT_EQ(h.applied, (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(h.buf.size(), 0u);
}

TEST(PendingBufferTest, ScanPrefersEarlierSubmissions) {
  // Two items become ready at once; the earlier-submitted one applies first.
  Harness h;
  h.submit({10, 2});
  h.submit({11, 2});
  h.raise(2);
  ASSERT_EQ(h.applied.size(), 2u);
  EXPECT_EQ(h.applied[0], 10);
  EXPECT_EQ(h.applied[1], 11);
}

TEST(PendingBufferTest, UnsatisfiedItemsStay) {
  Harness h;
  h.submit({7, 100});
  h.raise(50);
  EXPECT_TRUE(h.applied.empty());
  EXPECT_EQ(h.buf.size(), 1u);
}

TEST(PendingBufferTest, MixedReadiness) {
  Harness h;
  h.submit({2, 1});
  h.submit({9, 8});
  h.submit({1, 0});  // applies, raises level to 1, unblocks 2 but not 9
  EXPECT_EQ(h.applied, (std::vector<int>{1, 2}));
  EXPECT_EQ(h.buf.size(), 1u);
  h.raise(8);
  EXPECT_EQ(h.applied, (std::vector<int>{1, 2, 9}));
}

}  // namespace
}  // namespace ccpr::causal
