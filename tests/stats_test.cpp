#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ccpr::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MeanAndVarianceMatchClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev() * s.stddev(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats all, a, b;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform01() * 100;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, VarianceNeedsTwoSamples) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.add(7.0);
  // A single sample has no spread: n-1 denominator must not divide by zero.
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, IdenticalSamplesHaveZeroVariance) {
  // Catastrophic cancellation in a naive sum-of-squares form can drive the
  // accumulator slightly negative; stddev() must never go NaN.
  RunningStats s;
  for (int i = 0; i < 10000; ++i) s.add(1e9 + 0.1);
  EXPECT_GE(s.variance(), 0.0);
  EXPECT_NEAR(s.stddev(), 0.0, 1e-3);
  EXPECT_EQ(s.stddev(), s.stddev());  // not NaN
}

TEST(RunningStatsTest, MergeTwoEmptiesStaysEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(RunningStatsTest, MergeSingletonsMatchesDirect) {
  // The sweep aggregator merges one RunningStats per seed; the smallest
  // real case is singleton+singleton.
  RunningStats a, b, direct;
  a.add(10.0);
  b.add(20.0);
  direct.add(10.0);
  direct.add(20.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), direct.mean());
  EXPECT_DOUBLE_EQ(a.variance(), direct.variance());
  EXPECT_DOUBLE_EQ(a.min(), 10.0);
  EXPECT_DOUBLE_EQ(a.max(), 20.0);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(HistogramTest, SmallExactValues) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.5);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
  // Values < 32 land in unit-wide buckets; the reported value is the
  // bucket's *upper* edge (capped by max), same as every other group.
  EXPECT_DOUBLE_EQ(h.percentile(0.1), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 9.0);
}

TEST(HistogramTest, PercentileIsMonotoneInQ) {
  Histogram h;
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) h.add(rng.exponential(1000.0));
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = h.percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, PercentileBoundedRelativeError) {
  Histogram h;
  // A point mass at a large value: every percentile must be within the
  // sub-bucket resolution (1/32) of it.
  for (int i = 0; i < 100; ++i) h.add(100000.0);
  const double p50 = h.percentile(0.5);
  EXPECT_GE(p50, 100000.0 * (1.0 - 1.0 / 16));
  EXPECT_LE(p50, 100000.0 * (1.0 + 1.0 / 8));
}

TEST(HistogramTest, MedianOfUniformIsCentered) {
  Histogram h;
  Rng rng(12);
  for (int i = 0; i < 50000; ++i) h.add(rng.uniform01() * 10000.0);
  EXPECT_NEAR(h.percentile(0.5), 5000.0, 600.0);
}

TEST(HistogramTest, NegativeValuesClampToZeroBucket) {
  Histogram h;
  h.add(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), -5.0);  // capped by max()
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.add(10.0);
  for (int i = 0; i < 100; ++i) b.add(1000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  // Upper edge of the [10, 11) bucket.
  EXPECT_DOUBLE_EQ(a.percentile(0.25), 11.0);
  EXPECT_GT(a.percentile(0.9), 900.0);
}

TEST(HistogramTest, BucketEdgeIsUpperBoundForEveryValue) {
  // Property: the edge a bucket reports must bound every value that maps
  // into it — value_for(index_for(v)) >= v — uniformly across groups. The
  // group-0 buckets used to report the lower edge, under-reporting small
  // percentiles. Exercised through the public API: with a sentinel sample
  // far above v, percentile(0.5) returns v's bucket edge un-clamped.
  const auto edge_of = [](double v) {
    Histogram h;
    h.add(v);
    h.add(1e14);  // keeps max() above the edge so the cap cannot hide a bug
    return h.percentile(0.5);
  };
  for (double v :
       {0.0, 0.5, 1.0, 1.5, 2.0, 31.0, 31.9, 32.0, 33.0, 47.5, 63.0, 64.0,
        65.0, 127.0, 128.0, 1000.0, 123456.0, 98765432.1}) {
    EXPECT_GE(edge_of(v), v) << "value " << v;
  }
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.exponential(1.0e6);
    EXPECT_GE(edge_of(v), v) << "value " << v;
  }
}

TEST(HistogramTest, PercentileExtremesOfQ) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  // q=0 reports the smallest bucket's edge, q=1 the max; both bound the
  // true extremes and q=0 <= q=1.
  EXPECT_GE(h.percentile(0.0), 1.0);
  EXPECT_LE(h.percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(HistogramTest, NanosecondBucketsResolveSubMicrosecondLatencies) {
  // The bench harness records latencies in ns precisely so that sub-us
  // operations don't all collapse into one bucket (the old us-granular
  // histogram pinned every percentile at 1.0us). 40ns and 700ns ops must
  // land in distinguishable buckets with truthful percentiles.
  Histogram h;
  for (int i = 0; i < 900; ++i) h.add(40.0);   // fast path: 0.04us
  for (int i = 0; i < 100; ++i) h.add(700.0);  // slow tail: 0.7us
  const double p50_us = h.percentile(0.5) / 1000.0;
  const double p99_us = h.percentile(0.99) / 1000.0;
  EXPECT_GT(p50_us, 0.0);
  EXPECT_LT(p50_us, 0.05);  // near 0.04, not quantized up to 1.0
  EXPECT_GT(p99_us, 0.6);
  EXPECT_LT(p99_us, 0.8);
  EXPECT_LT(p50_us, p99_us);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.add(42.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

}  // namespace
}  // namespace ccpr::util
