#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

namespace ccpr::metrics {
namespace {

TEST(GaugeTest, TracksPeak) {
  Gauge g;
  g.set(5);
  g.set(2);
  EXPECT_EQ(g.current(), 2u);
  EXPECT_EQ(g.peak(), 5u);
}

TEST(GaugeTest, CurrentIsALevelPeakIsMonotone) {
  // A gauge is a level, not a counter: set() must move current both ways,
  // while peak only ever ratchets up.
  Gauge g;
  g.set(8);
  g.set(3);
  EXPECT_EQ(g.current(), 3u);
  EXPECT_EQ(g.peak(), 8u);
  g.set(12);
  EXPECT_EQ(g.current(), 12u);
  EXPECT_EQ(g.peak(), 12u);
  g.add_sample(1);  // add_sample is set() + stats; same level semantics
  EXPECT_EQ(g.current(), 1u);
  EXPECT_EQ(g.peak(), 12u);
  g.set(0);
  EXPECT_EQ(g.current(), 0u);
  EXPECT_EQ(g.peak(), 12u);
}

TEST(GaugeTest, AddSampleFeedsStats) {
  Gauge g;
  g.add_sample(10);
  g.add_sample(20);
  EXPECT_EQ(g.samples().count(), 2u);
  EXPECT_DOUBLE_EQ(g.samples().mean(), 15.0);
  EXPECT_EQ(g.peak(), 20u);
}

TEST(GaugeTest, MergeSumsCurrentMaxesPeak) {
  Gauge a, b;
  a.add_sample(10);
  b.add_sample(30);
  b.set(4);
  a.merge(b);
  EXPECT_EQ(a.current(), 14u);
  EXPECT_EQ(a.peak(), 30u);
  EXPECT_EQ(a.samples().count(), 2u);
}

TEST(MetricsTest, TotalsRollUp) {
  Metrics m;
  m.update_msgs = 3;
  m.fetch_req_msgs = 2;
  m.fetch_resp_msgs = 2;
  m.control_bytes = 100;
  m.payload_bytes = 50;
  EXPECT_EQ(m.messages_total(), 7u);
  EXPECT_EQ(m.bytes_total(), 150u);
  EXPECT_NEAR(m.control_bytes_per_message(), 100.0 / 7.0, 1e-12);
}

TEST(MetricsTest, ControlBytesPerMessageZeroWhenNoMessages) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.control_bytes_per_message(), 0.0);
}

TEST(MetricsTest, MergeSumsCounters) {
  Metrics a, b;
  a.update_msgs = 1;
  a.writes = 10;
  a.apply_delay_us.add(100.0);
  b.update_msgs = 2;
  b.writes = 5;
  b.apply_delay_us.add(300.0);
  b.pending_peak = 7;
  a.merge(b);
  EXPECT_EQ(a.update_msgs, 3u);
  EXPECT_EQ(a.writes, 15u);
  EXPECT_EQ(a.apply_delay_us.count(), 2u);
  EXPECT_EQ(a.pending_peak, 7u);
}

TEST(MetricsTest, NotePendingKeepsMax) {
  Metrics m;
  m.note_pending(3);
  m.note_pending(1);
  EXPECT_EQ(m.pending_peak, 3u);
}

}  // namespace
}  // namespace ccpr::metrics
