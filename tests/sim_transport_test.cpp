#include "net/sim_transport.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ccpr::net {
namespace {

struct Collector final : IMessageSink {
  std::vector<Message> received;
  void deliver(Message msg) override { received.push_back(std::move(msg)); }
};

Message make(MsgKind kind, SiteId src, SiteId dst, std::size_t body_size,
             std::uint32_t payload) {
  Message m;
  m.kind = kind;
  m.src = src;
  m.dst = dst;
  m.body.assign(body_size, 0x5a);
  m.payload_bytes = payload;
  return m;
}

struct SimTransportTest : ::testing::Test {
  sim::Scheduler sched;
  sim::UniformLatency lat{10, 1000};
  util::Rng rng{77};
  metrics::Metrics metrics;
};

TEST_F(SimTransportTest, DeliversToConnectedSink) {
  SimTransport t(2, sched, lat, rng, metrics);
  Collector c0, c1;
  t.connect(0, &c0);
  t.connect(1, &c1);
  t.send(make(MsgKind::kUpdate, 0, 1, 10, 4));
  EXPECT_EQ(t.messages_in_flight(), 1u);
  sched.run();
  EXPECT_EQ(t.messages_in_flight(), 0u);
  ASSERT_EQ(c1.received.size(), 1u);
  EXPECT_TRUE(c0.received.empty());
  EXPECT_EQ(c1.received[0].src, 0u);
  EXPECT_EQ(c1.received[0].body.size(), 10u);
}

TEST_F(SimTransportTest, ChannelIsFifoDespiteRandomLatency) {
  SimTransport t(2, sched, lat, rng, metrics);
  Collector c0, c1;
  t.connect(0, &c0);
  t.connect(1, &c1);
  for (std::uint32_t i = 0; i < 200; ++i) {
    Message m = make(MsgKind::kUpdate, 0, 1, 4, 0);
    m.body[0] = static_cast<std::uint8_t>(i);
    t.send(std::move(m));
  }
  sched.run();
  ASSERT_EQ(c1.received.size(), 200u);
  for (std::uint32_t i = 0; i < 200; ++i) {
    EXPECT_EQ(c1.received[i].body[0], static_cast<std::uint8_t>(i));
  }
}

TEST_F(SimTransportTest, IndependentChannelsMayReorder) {
  // With disjoint sources, ordering is by sampled latency, not send order —
  // verify at least that both arrive.
  SimTransport t(3, sched, lat, rng, metrics);
  Collector c0, c1, c2;
  t.connect(0, &c0);
  t.connect(1, &c1);
  t.connect(2, &c2);
  t.send(make(MsgKind::kUpdate, 0, 2, 1, 0));
  t.send(make(MsgKind::kUpdate, 1, 2, 1, 0));
  sched.run();
  EXPECT_EQ(c2.received.size(), 2u);
}

TEST_F(SimTransportTest, AccountsMessageKindsAndBytes) {
  SimTransport t(2, sched, lat, rng, metrics);
  Collector c0, c1;
  t.connect(0, &c0);
  t.connect(1, &c1);
  t.send(make(MsgKind::kUpdate, 0, 1, 100, 60));
  t.send(make(MsgKind::kFetchReq, 1, 0, 8, 0));
  t.send(make(MsgKind::kFetchResp, 0, 1, 70, 64));
  sched.run();
  EXPECT_EQ(metrics.update_msgs, 1u);
  EXPECT_EQ(metrics.fetch_req_msgs, 1u);
  EXPECT_EQ(metrics.fetch_resp_msgs, 1u);
  EXPECT_EQ(metrics.messages_total(), 3u);
  EXPECT_EQ(metrics.payload_bytes, 60u + 0u + 64u);
  EXPECT_EQ(metrics.control_bytes, 40u + 8u + 6u);
}

TEST_F(SimTransportTest, DeliveryRespectsSampledLatency) {
  sim::ConstantLatency fixed(500);
  SimTransport t(2, sched, fixed, rng, metrics);
  Collector c0, c1;
  t.connect(0, &c0);
  t.connect(1, &c1);
  sim::SimTime delivered_at = -1;
  struct At final : IMessageSink {
    sim::Scheduler& s;
    sim::SimTime& out;
    At(sim::Scheduler& sc, sim::SimTime& o) : s(sc), out(o) {}
    void deliver(Message) override { out = s.now(); }
  } at(sched, delivered_at);
  SimTransport t2(2, sched, fixed, rng, metrics);
  t2.connect(0, &c0);
  t2.connect(1, &at);
  t2.send(make(MsgKind::kUpdate, 0, 1, 1, 0));
  sched.run();
  EXPECT_EQ(delivered_at, 500);
}

TEST_F(SimTransportTest, SelfSendIsDelivered) {
  SimTransport t(2, sched, lat, rng, metrics);
  Collector c0, c1;
  t.connect(0, &c0);
  t.connect(1, &c1);
  t.send(make(MsgKind::kUpdate, 0, 0, 1, 0));
  sched.run();
  EXPECT_EQ(c0.received.size(), 1u);
}

}  // namespace
}  // namespace ccpr::net
