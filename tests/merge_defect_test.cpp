// Regression capture for the Algorithm 3 MERGE defect (DESIGN.md §6).
//
// The paper's MERGE deletes any log record that is older than a same-sender
// record in the other log. Two causal paths can cross-justify their prunes
// so that the co-maximal carrier of a destination obligation is deleted,
// after which a write is applied before its causal dependencies. This
// workload (found by the randomized integration sweep, minimized here to a
// fixed seed) reliably reproduces the violation under the paper's rule and
// passes under the conservative rule that ships as the default.
#include <gtest/gtest.h>

#include <memory>

#include "checker/causal_checker.hpp"
#include "test_support.hpp"
#include "workload/workload.hpp"

namespace ccpr::causal {
namespace {

checker::CheckResult run_with_merge(bool aggressive) {
  const std::uint32_t n = 3, q = 9, p = 2;
  workload::WorkloadSpec spec;
  spec.ops_per_site = 150;
  spec.write_rate = 0.5;
  spec.dist = workload::WorkloadSpec::KeyDist::kZipf;
  spec.zipf_theta = 0.99;
  spec.locality = 0.5;
  spec.value_bytes = 32;
  spec.seed = 13;
  const auto rmap = ReplicaMap::even(n, q, p);
  const Program program = workload::generate_program(spec, rmap);

  SimCluster::Options opts;
  opts.latency = std::make_unique<sim::LogNormalLatency>(20'000.0, 0.7);
  opts.latency_seed = 13 * 31 + 1;
  opts.mean_think_us = 2'000;
  opts.protocol.aggressive_merge = aggressive;

  SimCluster cluster(Algorithm::kOptTrack, ReplicaMap::even(n, q, p),
                     std::move(opts));
  cluster.run_program(program);
  return checker::check_causal_consistency(cluster.history(),
                                           cluster.replica_map());
}

TEST(MergeDefectTest, PaperMergeViolatesCausality) {
  const auto result = run_with_merge(/*aggressive=*/true);
  ASSERT_FALSE(result.ok)
      << "expected the paper's MERGE rule to lose a destination obligation "
         "on this workload";
  bool apply_violation = false;
  for (const auto& v : result.violations) {
    apply_violation |= v.find("causal apply violation") != std::string::npos;
  }
  EXPECT_TRUE(apply_violation);
}

TEST(MergeDefectTest, ConservativeMergeIsCausal) {
  const auto result = run_with_merge(/*aggressive=*/false);
  EXPECT_TRUE(result.ok);
  for (const auto& v : result.violations) ADD_FAILURE() << v;
}

}  // namespace
}  // namespace ccpr::causal
