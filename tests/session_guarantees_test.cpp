// Session guarantees (Terry et al.) — all four are implied by causal
// memory; these scripted scenarios pin each one down explicitly across the
// partial-replication algorithms.
#include <gtest/gtest.h>

#include "test_support.hpp"

namespace ccpr::causal {
namespace {

using ccpr::testing::constant_latency;
using ccpr::testing::expect_causal;
using ccpr::testing::matrix_latency;

class SessionGuarantees : public ::testing::TestWithParam<Algorithm> {};

TEST_P(SessionGuarantees, ReadYourWrites) {
  SimCluster c(GetParam(), ReplicaMap::even(3, 6, 2), constant_latency(500));
  for (int i = 1; i <= 10; ++i) {
    const std::string v = "v" + std::to_string(i);
    c.write(0, 0, v);  // var 0 is local to site 0
    EXPECT_EQ(c.read(0, 0).data, v);
  }
  c.run();
  expect_causal(c);
}

TEST_P(SessionGuarantees, MonotonicReadsOnLocalVar) {
  // Once site 1 has read v2 it must never read v1 again.
  SimCluster c(GetParam(), ReplicaMap::even(3, 6, 2), constant_latency(500));
  c.write(0, 0, "v1");  // var 0 at {0, 1}
  c.run();
  ASSERT_EQ(c.read(1, 0).data, "v1");
  c.write(0, 0, "v2");
  c.run();
  ASSERT_EQ(c.read(1, 0).data, "v2");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(c.read(1, 0).data, "v2");  // never regresses
  }
  expect_causal(c);
}

TEST_P(SessionGuarantees, WritesFollowReads) {
  // Site 1 reads site 0's write, then writes; at every common replica the
  // writes must apply in that order.
  auto opts = matrix_latency(3, {0, 1000, 80'000,  //
                                 1000, 0, 1000,    //
                                 80'000, 1000, 0});
  SimCluster c(GetParam(), ReplicaMap::full(3, 2), std::move(opts));
  c.write(0, 0, "cause");
  c.run_until(5'000);
  ASSERT_EQ(c.read(1, 0).data, "cause");
  c.write(1, 1, "effect");
  c.run();
  for (SiteId s = 0; s < 3; ++s) {
    const auto seq = ccpr::testing::applies_at(c.history(), s);
    const auto ic = ccpr::testing::index_of(seq, WriteId{0, 1});
    const auto ie = ccpr::testing::index_of(seq, WriteId{1, 1});
    ASSERT_GE(ic, 0);
    ASSERT_GE(ie, 0);
    EXPECT_LT(ic, ie) << "at site " << s;
  }
  expect_causal(c);
}

TEST_P(SessionGuarantees, MonotonicWrites) {
  // A process's own writes apply everywhere in program order.
  SimCluster c(GetParam(), ReplicaMap::even(3, 3, 2), constant_latency(700));
  for (int i = 1; i <= 8; ++i) {
    c.write(0, 0, "a" + std::to_string(i));
    c.write(0, 1, "b" + std::to_string(i));  // two vars, same replicas? no:
    // even(3,3,2): var 0 at {0,1}, var 1 at {1,2} — overlapping at site 1.
  }
  c.run();
  const auto seq = ccpr::testing::applies_at(c.history(), 1);
  std::uint64_t last = 0;
  for (const WriteId& id : seq) {
    if (id.writer != 0) continue;
    EXPECT_GT(id.seq, last);
    last = id.seq;
  }
  expect_causal(c);
}

INSTANTIATE_TEST_SUITE_P(PartialAlgorithms, SessionGuarantees,
                         ::testing::Values(Algorithm::kFullTrack,
                                           Algorithm::kOptTrack),
                         [](const ::testing::TestParamInfo<Algorithm>& param_info) {
                           return param_info.param == Algorithm::kFullTrack
                                      ? "FullTrack"
                                      : "OptTrack";
                         });

}  // namespace
}  // namespace ccpr::causal
