#include "causal/opt_track.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace ccpr::causal {
namespace {

using ccpr::testing::applies_at;
using ccpr::testing::constant_latency;
using ccpr::testing::expect_causal;
using ccpr::testing::index_of;
using ccpr::testing::matrix_latency;

const OptTrack& ot(const SimCluster& c, SiteId s) {
  return dynamic_cast<const OptTrack&>(c.site(s));
}

TEST(OptTrackTest, WriteAddsOwnLogEntryWithoutSelf) {
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::even(3, 3, 2),
               constant_latency(100));
  c.write(0, 0, "a");  // var 0 at {0,1}
  const Log& log = ot(c, 0).log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].sender, 0u);
  EXPECT_EQ(log[0].clock, 1u);
  EXPECT_EQ(log[0].dests, (DestSet{1}));  // own site excluded
  c.run();
  expect_causal(c);
}

TEST(OptTrackTest, Condition2PrunesAtWriterOnNextWrite) {
  // Two successive writes destined to the same site: the second write's
  // replica set subsumes the first entry's destination.
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::even(3, 3, 2),
               constant_latency(100));
  c.write(0, 0, "a");  // dests {1}
  c.write(0, 0, "b");  // same var, same dests
  {
    // Write 1's entry lost its destination to Condition 2 but survives the
    // purge because, at purge time, no newer record from site 0 existed yet
    // (PURGE runs before the new entry is appended, paper lines 10-13).
    const Log& log = ot(c, 0).log();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].clock, 1u);
    EXPECT_TRUE(log[0].dests.empty());
    EXPECT_EQ(log[1].clock, 2u);
    EXPECT_EQ(log[1].dests, (DestSet{1}));
  }
  c.write(0, 0, "c");
  {
    // Now write 1's empty record is no longer the newest and is dropped;
    // write 2's record just became the retained empty one.
    const Log& log = ot(c, 0).log();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].clock, 2u);
    EXPECT_TRUE(log[0].dests.empty());
    EXPECT_EQ(log[1].clock, 3u);
  }
  c.run();
  expect_causal(c);
}

TEST(OptTrackTest, EmptyDestEntryRetainedWhileNewest) {
  // Fig. 2 of the paper: a record whose destination list became empty must
  // be kept as long as it is the newest record from its sender — it still
  // cleans other sites' logs when piggybacked.
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::even(3, 3, 2),
               constant_latency(100));
  c.write(0, 0, "a");
  c.write(0, 0, "b");
  const Log& log = ot(c, 0).log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].dests.empty());
  EXPECT_EQ(log[0].clock, 1u);  // retained: newest empty record at purge time
  c.run();
}

TEST(OptTrackTest, Condition1PrunesReceiverAtApply) {
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::even(2, 2, 2),
               constant_latency(100));
  c.write(0, 0, "a");
  c.run();
  // Site 1 applied the update; its LastWriteOn log entry must not list site
  // 1 anymore. Observe it through a read merge.
  const Value v = c.read(1, 0);
  EXPECT_EQ(v.data, "a");
  const Log& log = ot(c, 1).log();
  ASSERT_FALSE(log.empty());
  for (const LogEntry& e : log) {
    EXPECT_FALSE(e.dests.contains(1));
  }
  expect_causal(c);
}

TEST(OptTrackTest, ApplyClockUsesAssignmentSemantics) {
  // Site 0's first write is NOT locally replicated; the second is. Apply[0]
  // at site 0 must jump to the clock value (2), not count to 1.
  auto rmap = ReplicaMap::custom(2, {{1}, {0, 1}});
  SimCluster c(Algorithm::kOptTrack, std::move(rmap), constant_latency(100));
  c.write(0, 0, "only-at-1");
  c.write(0, 1, "both");
  EXPECT_EQ(ot(c, 0).clock(), 2u);
  EXPECT_EQ(ot(c, 0).applied_clock(0), 2u);
  c.run();
  EXPECT_EQ(ot(c, 1).applied_clock(0), 2u);
  expect_causal(c);
}

TEST(OptTrackTest, CausalChainRespectedAcrossSlowChannel) {
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::full(3, 2),
               std::move(opts));
  c.write(0, 0, "a");
  c.run_until(5'000);
  ASSERT_EQ(c.read(1, 0).data, "a");
  c.write(1, 1, "b");
  c.run();
  const auto seq = applies_at(c.history(), 2);
  EXPECT_LT(index_of(seq, WriteId{0, 1}), index_of(seq, WriteId{1, 1}));
  expect_causal(c);
}

TEST(OptTrackTest, ConcurrentWritesNotDelayed) {
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::full(3, 2),
               std::move(opts));
  c.write(0, 0, "a");
  c.run_until(5'000);
  c.write(1, 1, "b");  // no read: concurrent
  c.run();
  const auto seq = applies_at(c.history(), 2);
  EXPECT_LT(index_of(seq, WriteId{1, 1}), index_of(seq, WriteId{0, 1}));
  expect_causal(c);
}

TEST(OptTrackTest, RemoteReadMergesPiggybackedLog) {
  // Var 0 lives only at site 1. Site 0 reads it remotely; afterwards its
  // local log must know about the write it read.
  auto rmap = ReplicaMap::custom(2, {{1}});
  SimCluster c(Algorithm::kOptTrack, std::move(rmap), constant_latency(100));
  c.write(1, 0, "remote");
  c.run();
  const Value v = c.read(0, 0);
  EXPECT_EQ(v.data, "remote");
  const Log& log = ot(c, 0).log();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log[0].sender, 1u);
  EXPECT_EQ(log[0].clock, 1u);
  expect_causal(c);
}

TEST(OptTrackTest, DistributeWriteModeIsEquivalentlyCausal) {
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  opts.protocol.distribute_write = true;
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::full(3, 2),
               std::move(opts));
  c.write(0, 0, "a");
  c.run_until(5'000);
  ASSERT_EQ(c.read(1, 0).data, "a");
  c.write(1, 1, "b");
  c.run();
  const auto seq = applies_at(c.history(), 2);
  EXPECT_LT(index_of(seq, WriteId{0, 1}), index_of(seq, WriteId{1, 1}));
  expect_causal(c);
}

TEST(OptTrackTest, PruningDisabledStillCausalButFatter) {
  auto opts = constant_latency(100);
  opts.protocol.prune_cond1 = false;
  opts.protocol.prune_cond2 = false;
  SimCluster fat(Algorithm::kOptTrack, ReplicaMap::even(4, 8, 2),
                 std::move(opts));
  SimCluster lean(Algorithm::kOptTrack, ReplicaMap::even(4, 8, 2),
                  constant_latency(100));
  for (int round = 0; round < 10; ++round) {
    for (SiteId s = 0; s < 4; ++s) {
      fat.write(s, (s + static_cast<VarId>(round)) % 8, "v");
      lean.write(s, (s + static_cast<VarId>(round)) % 8, "v");
    }
    fat.run();
    lean.run();
  }
  expect_causal(fat);
  expect_causal(lean);
  EXPECT_GT(fat.metrics().control_bytes, lean.metrics().control_bytes);
}

TEST(OptTrackTest, LogStaysBoundedUnderSteadyTraffic) {
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::even(4, 8, 2),
               constant_latency(100));
  for (int round = 0; round < 50; ++round) {
    for (SiteId s = 0; s < 4; ++s) {
      c.write(s, (s * 2) % 8, "v");
    }
    c.run();
  }
  // Pruning keeps the log around O(n), not O(total writes).
  for (SiteId s = 0; s < 4; ++s) {
    EXPECT_LE(c.site(s).log_entry_count(), 8u);
  }
  expect_causal(c);
}

}  // namespace
}  // namespace ccpr::causal
