// net::Reactor tests: framed echo traffic, strictly ordered pipelined
// responses (including out-of-order completion), the per-connection
// in-flight cap, late-response dropping, and the headline capacity claim —
// thousands of idle connections held open while active traffic still
// flows on a handful of loop threads.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace ccpr {
namespace {

using namespace std::chrono_literals;

std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& body) {
  net::Encoder enc(body.size() + net::kFrameLenBytes);
  enc.u32(static_cast<std::uint32_t>(body.size()));
  enc.raw(body.data(), body.size());
  return enc.take();
}

bool read_frame(int fd, std::vector<std::uint8_t>* body) {
  std::uint8_t len[net::kFrameLenBytes];
  if (!net::read_all(fd, len, sizeof len)) return false;
  const auto size =
      net::decode_frame_size(len, sizeof len, net::kDefaultMaxFrameBytes);
  if (!size) return false;
  body->resize(*size);
  return net::read_all(fd, body->data(), body->size());
}

/// Reactor + echo handler bundle for the tests below.
struct EchoServer {
  std::uint16_t port = 0;
  std::unique_ptr<net::Reactor> reactor;

  /// `defer`: completions go through a worker thread in LIFO order, so
  /// responses complete out of request order and the reactor must reorder.
  explicit EchoServer(net::Reactor::Options opts, bool defer = false) {
    net::Socket listener = net::tcp_listen("127.0.0.1", 0, &port);
    EXPECT_TRUE(listener.valid());
    if (defer) {
      reactor = std::make_unique<net::Reactor>(
          std::move(listener), opts,
          [this](const net::Reactor::ConnRef& ref,
                 std::vector<std::uint8_t> body) {
            std::lock_guard lk(mu_);
            deferred_.emplace_back(ref, std::move(body));
          });
      worker_ = std::thread([this] {
        while (!stop_.load(std::memory_order_relaxed)) {
          std::pair<net::Reactor::ConnRef, std::vector<std::uint8_t>> item;
          {
            std::lock_guard lk(mu_);
            if (deferred_.empty()) {
              std::this_thread::sleep_for(100us);
              continue;
            }
            item = std::move(deferred_.back());  // LIFO: reverse order
            deferred_.pop_back();
          }
          reactor->send_response(item.first, std::move(item.second));
        }
      });
    } else {
      reactor = std::make_unique<net::Reactor>(
          std::move(listener), opts,
          [this](const net::Reactor::ConnRef& ref,
                 std::vector<std::uint8_t> body) {
            reactor->send_response(ref, std::move(body));
          });
    }
    EXPECT_TRUE(reactor->start());
  }

  ~EchoServer() {
    stop_.store(true, std::memory_order_relaxed);
    if (worker_.joinable()) worker_.join();
    reactor->stop();
  }

  std::atomic<bool> stop_{false};
  std::thread worker_;
  std::mutex mu_;
  std::vector<std::pair<net::Reactor::ConnRef, std::vector<std::uint8_t>>>
      deferred_;
};

TEST(ReactorTest, EchoRoundTrip) {
  EchoServer srv(net::Reactor::Options{});
  net::Socket c = net::tcp_dial("127.0.0.1", srv.port);
  ASSERT_TRUE(c.valid());
  const std::vector<std::uint8_t> body = {1, 2, 3, 4, 5};
  const auto f = frame(body);
  ASSERT_TRUE(net::write_all(c.fd(), f.data(), f.size()));
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(read_frame(c.fd(), &got));
  EXPECT_EQ(got, body);

  const auto st = srv.reactor->stats();
  EXPECT_EQ(st.accepted, 1u);
  EXPECT_EQ(st.frames_in, 1u);
  EXPECT_EQ(st.frames_out, 1u);
}

TEST(ReactorTest, PipelinedResponsesStayInRequestOrder) {
  // Completions run LIFO on a worker thread; the wire order must still be
  // request order.
  EchoServer srv(net::Reactor::Options{}, /*defer=*/true);
  net::Socket c = net::tcp_dial("127.0.0.1", srv.port);
  ASSERT_TRUE(c.valid());

  const int kFrames = 64;
  std::vector<std::uint8_t> burst;
  for (int i = 0; i < kFrames; ++i) {
    net::Encoder body;
    body.varint(static_cast<std::uint64_t>(i));
    const auto f = frame(body.buffer());
    burst.insert(burst.end(), f.begin(), f.end());
  }
  ASSERT_TRUE(net::write_all(c.fd(), burst.data(), burst.size()));
  for (int i = 0; i < kFrames; ++i) {
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(read_frame(c.fd(), &got)) << "frame " << i;
    net::Decoder dec(got);
    EXPECT_EQ(dec.varint(), static_cast<std::uint64_t>(i));
  }
}

TEST(ReactorTest, InflightCapPausesReadsWithoutLosingFrames) {
  net::Reactor::Options opts;
  opts.max_inflight = 4;
  // Defer completions so the cap actually engages: the client pipelines
  // far more than 4 frames while nothing completes.
  EchoServer srv(opts, /*defer=*/true);
  net::Socket c = net::tcp_dial("127.0.0.1", srv.port);
  ASSERT_TRUE(c.valid());

  const int kFrames = 256;
  std::vector<std::uint8_t> burst;
  for (int i = 0; i < kFrames; ++i) {
    net::Encoder body;
    body.varint(static_cast<std::uint64_t>(i));
    body.raw(std::vector<std::uint8_t>(100, 0x5a).data(), 100);
    const auto f = frame(body.buffer());
    burst.insert(burst.end(), f.begin(), f.end());
  }
  // Write and read concurrently: with the cap at 4 the server won't read
  // ahead, so the writer only finishes because the reader drains.
  std::thread writer([&] {
    EXPECT_TRUE(net::write_all(c.fd(), burst.data(), burst.size()));
  });
  for (int i = 0; i < kFrames; ++i) {
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(read_frame(c.fd(), &got)) << "frame " << i;
    net::Decoder dec(got);
    EXPECT_EQ(dec.varint(), static_cast<std::uint64_t>(i));
  }
  writer.join();
  const auto st = srv.reactor->stats();
  EXPECT_EQ(st.frames_in, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(st.frames_out, static_cast<std::uint64_t>(kFrames));
}

TEST(ReactorTest, OversizedFrameDropsConnection) {
  net::Reactor::Options opts;
  opts.max_frame_bytes = 1024;
  EchoServer srv(opts);
  net::Socket c = net::tcp_dial("127.0.0.1", srv.port);
  ASSERT_TRUE(c.valid());
  net::Encoder enc;
  enc.u32(1 << 20);  // declared length over the cap
  ASSERT_TRUE(net::write_all(c.fd(), enc.buffer().data(),
                             enc.buffer().size()));
  // The server must close on us (read returns EOF / error).
  std::vector<std::uint8_t> got;
  EXPECT_FALSE(read_frame(c.fd(), &got));
  // Stats settle asynchronously with the close.
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (srv.reactor->stats().conns_dropped == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(srv.reactor->stats().conns_dropped, 1u);
  EXPECT_EQ(srv.reactor->stats().active, 0u);
}

TEST(ReactorTest, LateResponseForDeadConnectionIsDropped) {
  // Capture the ref, close the client, then answer: the response must be
  // counted as late, not crash or land on a reused connection.
  std::mutex mu;
  std::vector<net::Reactor::ConnRef> refs;
  std::uint16_t port = 0;
  net::Socket listener = net::tcp_listen("127.0.0.1", 0, &port);
  ASSERT_TRUE(listener.valid());
  net::Reactor reactor(
      std::move(listener), net::Reactor::Options{},
      [&](const net::Reactor::ConnRef& ref, std::vector<std::uint8_t>) {
        std::lock_guard lk(mu);
        refs.push_back(ref);
      });
  ASSERT_TRUE(reactor.start());
  {
    net::Socket c = net::tcp_dial("127.0.0.1", port);
    ASSERT_TRUE(c.valid());
    const auto f = frame({1});
    ASSERT_TRUE(net::write_all(c.fd(), f.data(), f.size()));
    const auto deadline = std::chrono::steady_clock::now() + 2s;
    for (;;) {
      {
        std::lock_guard lk(mu);
        if (!refs.empty()) break;
      }
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::sleep_for(1ms);
    }
  }  // client closes
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (reactor.stats().active != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(reactor.stats().active, 0u);
  net::Reactor::ConnRef ref;
  {
    std::lock_guard lk(mu);
    ref = refs.front();
  }
  reactor.send_response(ref, {2});
  const auto late_deadline = std::chrono::steady_clock::now() + 2s;
  while (reactor.stats().late_responses == 0 &&
         std::chrono::steady_clock::now() < late_deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(reactor.stats().late_responses, 1u);
  reactor.stop();
}

TEST(ReactorTest, HoldsThousandsOfIdleConnectionsWhileServingTraffic) {
  // The ISSUE's capacity claim, scaled to what a test box reliably allows:
  // raise RLIMIT_NOFILE toward its hard cap and hold 5k idle connections
  // (or as many as the limit leaves room for, minimum 1k) while an active
  // client sustains echo traffic on 4 loop threads. CCPR_REACTOR_CONNS
  // overrides the target (sanitizer CI trims it; loopback connect latency
  // dominates the runtime, not the reactor).
  struct rlimit lim;
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &lim), 0);
  struct rlimit raised = lim;
  raised.rlim_cur = std::min<rlim_t>(lim.rlim_max, 16384);
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &raised), 0);
  // Each idle connection costs two fds (client + server end, same
  // process); leave generous headroom for epoll fds, test infra, etc.
  const std::uint64_t budget =
      raised.rlim_cur > 1024 ? (raised.rlim_cur - 1024) / 2 : 0;
  std::uint64_t want = 5000;
  if (const char* env = std::getenv("CCPR_REACTOR_CONNS")) {
    want = std::max(1000ull, std::strtoull(env, nullptr, 10));
  }
  const std::uint64_t target = std::min<std::uint64_t>(budget, want);
  ASSERT_GE(target, 1000u) << "RLIMIT_NOFILE too low to run this test";

  net::Reactor::Options opts;
  opts.io_threads = 4;
  EchoServer srv(opts);

  // Dial in parallel: each blocking loopback connect costs milliseconds on
  // shared CI boxes, so a sequential loop would dominate the test time.
  const std::uint64_t kDialers = 16;
  std::vector<net::Socket> idle(target);
  std::atomic<std::uint64_t> dial_failures{0};
  {
    std::vector<std::thread> dialers;
    for (std::uint64_t d = 0; d < kDialers; ++d) {
      dialers.emplace_back([&, d] {
        for (std::uint64_t i = d; i < target; i += kDialers) {
          net::Socket c = net::tcp_dial("127.0.0.1", srv.port);
          if (!c.valid()) {
            dial_failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          idle[i] = std::move(c);
        }
      });
    }
    for (auto& t : dialers) t.join();
  }
  ASSERT_EQ(dial_failures.load(), 0u);
  // Every connection must be registered, not just queued in the backlog.
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (srv.reactor->stats().active < target &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_EQ(srv.reactor->stats().active, target);

  // Active traffic with all those idle connections registered.
  net::Socket busy = net::tcp_dial("127.0.0.1", srv.port);
  ASSERT_TRUE(busy.valid());
  for (int i = 0; i < 500; ++i) {
    net::Encoder body;
    body.varint(static_cast<std::uint64_t>(i));
    const auto f = frame(body.buffer());
    ASSERT_TRUE(net::write_all(busy.fd(), f.data(), f.size()));
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(read_frame(busy.fd(), &got)) << "op " << i;
    net::Decoder dec(got);
    EXPECT_EQ(dec.varint(), static_cast<std::uint64_t>(i));
  }
  // A few of the idle connections must still work too.
  for (std::uint64_t i = 0; i < target; i += target / 7 + 1) {
    const auto f = frame({static_cast<std::uint8_t>(i & 0xff)});
    ASSERT_TRUE(net::write_all(idle[i].fd(), f.data(), f.size()));
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(read_frame(idle[i].fd(), &got));
    EXPECT_EQ(got.size(), 1u);
  }
  idle.clear();
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &lim), 0);
}

}  // namespace
}  // namespace ccpr
