// End-to-end tests for the sweep harness (src/sweep): cell expansion,
// config validation, and the interruption/resume contract — a sweep killed
// partway through, resumed with --resume, must run only the missing cells
// and produce a BENCH_*.json aggregate byte-for-byte identical to a
// from-scratch run.
#include "sweep/sweep.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ccpr::sweep {
namespace {

namespace fs = std::filesystem;

/// A self-cleaning scratch dir holding a fake bench "binary" (a shell
/// script) that emits a deterministic result.json derived from its --seed
/// and appends its argv to an invocations.log two levels up — which, given
/// the runner's <exp>/runs/<cell>/ cwd, lands at <exp>/invocations.log.
class SweepHarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ccpr_sweep_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    root_ = tmpl;

    const fs::path script = root_ / "fakebench";
    std::ofstream out(script);
    out << "#!/bin/sh\n"
           "seed=0\n"
           "base=0\n"
           "out=result.json\n"
           "for arg in \"$@\"; do\n"
           "  case \"$arg\" in\n"
           "    --seed=*) seed=${arg#--seed=} ;;\n"
           "    --base=*) base=${arg#--base=} ;;\n"
           "    --out=*) out=${arg#--out=} ;;\n"
           "  esac\n"
           "done\n"
           "echo \"$@\" >> ../../invocations.log\n"
           "printf '{\"bench\": \"fake\", \"results\": [{\"alg\": \"fake\", "
           "\"metric\": %d}]}\\n' $((seed * 10 + base)) > \"$out\"\n";
    out.close();
    ASSERT_EQ(::chmod(script.c_str(), 0755), 0);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  /// 2-cell config: one bench, seeds {1, 2}, fixed arg --base=7. Seed s
  /// emits metric 10*s + 7, so the aggregate's mean/std are predictable.
  SweepConfig two_cell_config(const std::string& out_root) const {
    SweepConfig cfg;
    cfg.name = "fake-exp";
    cfg.out_root = (root_ / out_root).string();
    cfg.bin_dir = root_.string();
    BenchSpec spec;
    spec.bench = "fake";
    spec.bin = "fakebench";
    spec.args["base"] = "7";
    spec.seeds = {1, 2};
    cfg.benches.push_back(spec);
    return cfg;
  }

  static std::vector<std::string> read_lines(const fs::path& path) {
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  static std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  fs::path root_;
};

TEST_F(SweepHarnessTest, ExpandCellsIsDeterministicallyOrdered) {
  SweepConfig cfg = two_cell_config("out");
  cfg.benches[0].matrix["x"] = {"1", "2"};
  cfg.benches[0].ablations = {{"base", {}}, {"alt", {"--alt"}}};
  const auto cells = expand_cells(cfg);
  // ablations x matrix x seeds, in config/sorted/row-major order.
  ASSERT_EQ(cells.size(), 8u);
  EXPECT_EQ(cells[0].id, "fake.base.x-1.s1");
  EXPECT_EQ(cells[1].id, "fake.base.x-1.s2");
  EXPECT_EQ(cells[2].id, "fake.base.x-2.s1");
  EXPECT_EQ(cells[4].id, "fake.alt.x-1.s1");
  EXPECT_EQ(cells[7].id, "fake.alt.x-2.s2");
  // argv carries fixed args, matrix point, ablation flags, then the seed.
  const auto& argv = cells[4].argv;
  ASSERT_EQ(argv.size(), 4u);
  EXPECT_EQ(argv[0], "--base=7");
  EXPECT_EQ(argv[1], "--x=1");
  EXPECT_EQ(argv[2], "--alt");
  EXPECT_EQ(argv[3], "--seed=1");
}

TEST_F(SweepHarnessTest, CellIdsContainOnlySafeCharacters) {
  SweepConfig cfg = two_cell_config("out");
  cfg.benches[0].matrix["write rate"] = {"0.5", "a/b"};
  for (const auto& cell : expand_cells(cfg)) {
    EXPECT_EQ(cell.id.find_first_not_of(
                  "abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"),
              std::string::npos)
        << cell.id;
  }
}

TEST_F(SweepHarnessTest, ConfigParseRejectsMalformedDocuments) {
  std::string err;
  const auto check_fails = [&err](const char* text) {
    const auto doc = util::Json::parse(text, &err);
    ASSERT_TRUE(doc) << err;
    err.clear();
    EXPECT_FALSE(SweepConfig::parse(*doc, &err));
    EXPECT_FALSE(err.empty());
  };
  check_fails("{}");                                   // no name
  check_fails("{\"name\": \"x\"}");                    // no benches
  check_fails("{\"name\": \"x\", \"benches\": []}");   // empty benches
  check_fails(
      "{\"name\": \"x\", \"benches\": [{\"bench\": \"b\"}]}");  // no bin
  check_fails(
      "{\"name\": \"x\", \"benches\": [{\"bench\": \"b\", \"bin\": \"b\","
      " \"matrix\": {\"k\": []}}]}");  // empty matrix axis
  check_fails(
      "{\"name\": \"x\", \"benches\": [{\"bench\": \"b\", \"bin\": \"b\","
      " \"ablations\": [{\"flags\": []}]}]}");  // ablation without a name
}

TEST_F(SweepHarnessTest, ConfigParseAcceptsTheRealQuickMatrix) {
  // The committed CI matrix must stay loadable; catch drift between the
  // config schema and the checked-in experiment files.
  for (const char* path :
       {"bench/experiments/quick.json", "bench/experiments/default.json"}) {
    const fs::path repo_relative = fs::path(CCPR_SOURCE_DIR) / path;
    std::string err;
    const auto cfg = SweepConfig::load(repo_relative.string(), &err);
    ASSERT_TRUE(cfg) << path << ": " << err;
    EXPECT_FALSE(cfg->benches.empty()) << path;
    EXPECT_GT(expand_cells(*cfg).size(), cfg->benches.size()) << path;
  }
}

TEST_F(SweepHarnessTest, RunsCellsAndAggregatesMeanStd) {
  const SweepConfig cfg = two_cell_config("out");
  const auto cells = expand_cells(cfg);
  ASSERT_EQ(cells.size(), 2u);

  std::ostringstream log;
  RunnerOptions opts;
  opts.jobs = 2;
  const auto summary = run_cells(cfg, cells, opts, log);
  EXPECT_EQ(summary.ran, 2u);
  EXPECT_EQ(summary.failed, 0u);
  EXPECT_TRUE(summary.ok());

  // Per-cell artifacts: meta.json with a clean exit, captured stdio.
  const fs::path run1 = fs::path(experiment_dir(cfg)) / "runs" / "fake.base.s1";
  ASSERT_TRUE(fs::exists(run1 / "result.json"));
  const auto meta = util::Json::load_file((run1 / "meta.json").string());
  ASSERT_TRUE(meta);
  EXPECT_EQ((*meta)["exit_code"].as_int(-1), 0);
  EXPECT_EQ((*meta)["bench"].as_string(""), "fake");
  EXPECT_EQ((*meta)["seed"].as_int(0), 1);
  EXPECT_TRUE(meta->contains("git_sha"));
  EXPECT_TRUE(meta->contains("host"));
  EXPECT_TRUE(fs::exists(run1 / "stdout.txt"));

  std::string err;
  ASSERT_TRUE(aggregate(cfg, &err, log)) << err;
  const fs::path agg = fs::path(experiment_dir(cfg)) / "BENCH_fake.json";
  const auto doc = util::Json::load_file(agg.string(), &err);
  ASSERT_TRUE(doc) << err;
  EXPECT_EQ((*doc)["bench"].as_string(""), "fake");
  const auto& groups = (*doc)["groups"].items();
  ASSERT_EQ(groups.size(), 1u);
  const auto& row = groups[0]["results"].items()[0];
  // Identical across seeds -> stays scalar; differing -> {mean, std}.
  EXPECT_EQ(row["alg"].as_string(""), "fake");
  // Seeds 1,2 with --base=7 emit metrics 17 and 27.
  EXPECT_DOUBLE_EQ(row["metric"]["mean"].as_double(), 22.0);
  EXPECT_NEAR(row["metric"]["std"].as_double(), 7.0710678, 1e-6);
}

TEST_F(SweepHarnessTest, InterruptedSweepResumesOnlyMissingCells) {
  const SweepConfig cfg = two_cell_config("out");
  const auto cells = expand_cells(cfg);
  const fs::path exp_dir = experiment_dir(cfg);
  std::ostringstream log;

  // "Kill" the sweep after cell 1 of 2.
  RunnerOptions first;
  first.jobs = 1;
  first.max_cells = 1;
  const auto s1 = run_cells(cfg, cells, first, log);
  EXPECT_EQ(s1.ran, 1u);
  ASSERT_EQ(read_lines(exp_dir / "invocations.log").size(), 1u);
  EXPECT_TRUE(fs::exists(exp_dir / "runs" / "fake.base.s1" / "result.json"));
  EXPECT_FALSE(fs::exists(exp_dir / "runs" / "fake.base.s2" / "result.json"));

  // Aggregation refuses a half-finished sweep and names the hole.
  std::string err;
  EXPECT_FALSE(aggregate(cfg, &err, log));
  EXPECT_NE(err.find("fake.base.s2"), std::string::npos) << err;

  // Resume: only the missing cell runs.
  RunnerOptions resume;
  resume.jobs = 1;
  resume.resume = true;
  const auto s2 = run_cells(cfg, cells, resume, log);
  EXPECT_EQ(s2.ran, 1u);
  EXPECT_EQ(s2.resumed, 1u);
  EXPECT_EQ(s2.failed, 0u);
  const auto invocations = read_lines(exp_dir / "invocations.log");
  ASSERT_EQ(invocations.size(), 2u);
  EXPECT_NE(invocations[0].find("--seed=1"), std::string::npos);
  EXPECT_NE(invocations[1].find("--seed=2"), std::string::npos);

  ASSERT_TRUE(aggregate(cfg, &err, log)) << err;
  const std::string resumed_bytes =
      read_file(exp_dir / "BENCH_fake.json");
  ASSERT_FALSE(resumed_bytes.empty());

  // A from-scratch run of the same config aggregates byte-for-byte
  // identically: the snapshot depends only on results, never on how many
  // attempts it took to produce them.
  const SweepConfig fresh = two_cell_config("out-scratch");
  RunnerOptions all;
  all.jobs = 1;
  const auto s3 = run_cells(fresh, expand_cells(fresh), all, log);
  EXPECT_EQ(s3.ran, 2u);
  ASSERT_TRUE(aggregate(fresh, &err, log)) << err;
  const std::string scratch_bytes =
      read_file(fs::path(experiment_dir(fresh)) / "BENCH_fake.json");
  EXPECT_EQ(resumed_bytes, scratch_bytes);
}

TEST_F(SweepHarnessTest, ResumeRerunsCellsThatExitedNonZero) {
  const SweepConfig cfg = two_cell_config("out");
  const auto cells = expand_cells(cfg);
  const fs::path exp_dir = experiment_dir(cfg);
  std::ostringstream log;

  RunnerOptions all;
  all.jobs = 1;
  ASSERT_TRUE(run_cells(cfg, cells, all, log).ok());

  // Forge a crashed cell: result.json present but meta says exit 137.
  const fs::path meta_path = exp_dir / "runs" / "fake.base.s2" / "meta.json";
  auto meta = util::Json::load_file(meta_path.string());
  ASSERT_TRUE(meta);
  (*meta)["exit_code"] = 137;
  ASSERT_TRUE(meta->save_file(meta_path.string()));

  RunnerOptions resume;
  resume.jobs = 1;
  resume.resume = true;
  const auto summary = run_cells(cfg, cells, resume, log);
  EXPECT_EQ(summary.ran, 1u);     // only the forged-crash cell reran
  EXPECT_EQ(summary.resumed, 1u);
  ASSERT_EQ(read_lines(exp_dir / "invocations.log").size(), 3u);
}

TEST_F(SweepHarnessTest, DryRunTouchesNothing) {
  const SweepConfig cfg = two_cell_config("out");
  std::ostringstream log;
  RunnerOptions opts;
  opts.dry_run = true;
  const auto summary = run_cells(cfg, expand_cells(cfg), opts, log);
  EXPECT_EQ(summary.ran, 0u);
  EXPECT_FALSE(fs::exists(cfg.out_root));
  EXPECT_NE(log.str().find("[plan]"), std::string::npos);
  EXPECT_NE(log.str().find("fake.base.s1"), std::string::npos);
}

}  // namespace
}  // namespace ccpr::sweep
