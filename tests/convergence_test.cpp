#include "checker/convergence.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace ccpr::checker {
namespace {

using causal::Algorithm;
using causal::ReplicaMap;
using causal::SimCluster;
using causal::Value;
using causal::VarId;
using causal::WriteId;
using ccpr::testing::constant_latency;

TEST(LwwWinnerTest, HigherLamportWins) {
  Value a{{0, 5}, 5, "a"};
  Value b{{1, 7}, 7, "b"};
  EXPECT_EQ(lww_winner(a, b).data, "b");
  EXPECT_EQ(lww_winner(b, a).data, "b");
}

TEST(LwwWinnerTest, LamportBeatsPerWriterSeq) {
  // Writer 0's 50th write happened before writer 2's 3rd (causally):
  // the Lamport stamp, not the per-writer seq, must decide.
  Value a{{0, 50}, 50, "a"};
  Value b{{2, 3}, 51, "b"};
  EXPECT_EQ(lww_winner(a, b).data, "b");
  EXPECT_EQ(lww_winner(b, a).data, "b");
}

TEST(LwwWinnerTest, TiesBreakByWriter) {
  Value a{{0, 5}, 5, "a"};
  Value b{{2, 5}, 5, "b"};
  EXPECT_EQ(lww_winner(a, b).data, "b");
  EXPECT_EQ(lww_winner(b, a).data, "b");
}

TEST(LwwWinnerTest, InitialLosesToAnyWrite) {
  Value init{};
  Value w{{0, 1}, 1, "w"};
  EXPECT_EQ(lww_winner(init, w).data, "w");
}

TEST(ConvergenceAuditTest, QuiescentClusterConverges) {
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::even(4, 8, 2),
               constant_latency(500));
  for (causal::SiteId s = 0; s < 4; ++s) {
    c.write(s, s, "v" + std::to_string(s));
  }
  c.run();
  const auto report = audit_convergence(
      c.replica_map(),
      [&c](causal::SiteId s, VarId x) { return c.site(s).peek(x); });
  EXPECT_EQ(report.vars_checked, 8u);
  EXPECT_TRUE(report.converged());  // disjoint writers: no concurrency
}

TEST(ConvergenceAuditTest, DetectsDivergentReplicas) {
  // Two concurrent writes to the same variable applied in opposite orders
  // at the two replicas: plain causal consistency allows the divergence and
  // the auditor must report it.
  auto opts = ccpr::testing::matrix_latency(2, {0, 30'000,  //
                                                30'000, 0});
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::full(2, 1),
               std::move(opts));
  c.write(0, 0, "from-0");
  c.write(1, 0, "from-1");  // concurrent
  c.run();
  EXPECT_EQ(c.site(0).peek(0).data, "from-1");  // last applied at site 0
  EXPECT_EQ(c.site(1).peek(0).data, "from-0");
  const auto report = audit_convergence(
      c.replica_map(),
      [&c](causal::SiteId s, VarId x) { return c.site(s).peek(x); });
  EXPECT_EQ(report.divergent_vars, 1u);
  // The paper's causal+ fix: a deterministic final-value rule converges the
  // replicas without extra messages.
  const Value w = lww_winner(c.site(0).peek(0), c.site(1).peek(0));
  EXPECT_EQ(w.id, (WriteId{1, 1}));  // equal lamport: writer id breaks tie
}

TEST(ConvergenceAuditTest, UnwrittenVariablesAgreeTrivially) {
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::even(3, 6, 2),
               constant_latency(10));
  const auto report = audit_convergence(
      c.replica_map(),
      [&c](causal::SiteId s, VarId x) { return c.site(s).peek(x); });
  EXPECT_TRUE(report.converged());
}

}  // namespace
}  // namespace ccpr::checker
