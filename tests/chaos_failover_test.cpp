// Chaos injection, failure detection and client failover on the TCP
// runtime, all in-process so each scenario stays fast and inspectable:
//
//   * a partitioned link keeps queueing (drop-oldest at the cap) and the
//     anti-entropy catch-up recovers the dropped updates after heal;
//   * heartbeat suspicion surfaces in kStatus, in the Prometheus scrape,
//     and in fetch-target ranking (suspected replicas skipped first);
//   * reads whose every replica is suspected fail fast with kUnavailable
//     instead of burning the fetch timeout;
//   * the client retry loop transparently fails the session over to the
//     next-nearest site, carrying its causal past via coverage tokens;
//   * retried puts are idempotent: the server replays the stored result
//     for a repeated (session, request-id) pair.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "net/chaos.hpp"
#include "net/socket.hpp"
#include "server/client_protocol.hpp"
#include "server/cluster_config.hpp"
#include "server/site_server.hpp"

namespace ccpr {
namespace {

using namespace std::chrono_literals;

std::vector<std::uint16_t> pick_ports(std::size_t n) {
  std::vector<net::Socket> held;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint16_t port = 0;
    held.push_back(net::tcp_listen("127.0.0.1", 0, &port));
    EXPECT_TRUE(held.back().valid());
    ports.push_back(port);
  }
  return ports;
}

server::ClusterConfig make_config(std::uint32_t n, std::uint32_t q,
                                  std::uint32_t p) {
  auto cfg = server::ClusterConfig::loopback(n, q, p, 0);
  const auto ports = pick_ports(2 * n);
  for (std::uint32_t s = 0; s < n; ++s) {
    cfg.sites[s].peer_port = ports[s];
    cfg.sites[s].client_port = ports[n + s];
  }
  return cfg;
}

struct Cluster {
  explicit Cluster(server::ClusterConfig config) : cfg(std::move(config)) {
    for (causal::SiteId s = 0; s < cfg.site_count(); ++s) {
      servers.push_back(std::make_unique<server::SiteServer>(cfg, s));
      EXPECT_TRUE(servers.back()->start()) << "site " << s;
    }
  }
  ~Cluster() {
    for (auto& s : servers) {
      if (s) s->stop();
    }
  }
  server::ClusterConfig cfg;
  std::vector<std::unique_ptr<server::SiteServer>> servers;
};

/// Poll until `pred` holds or `budget` elapses.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(20ms);
  }
  return pred();
}

/// Value of the sample whose line starts with `series` ("name{labels}"),
/// or -1 when the series is absent from the exposition text.
double metric_value(const std::string& text, const std::string& series) {
  const auto pos = text.find(series + " ");
  if (pos == std::string::npos) return -1.0;
  return std::stod(text.substr(pos + series.size() + 1));
}

TEST(ChaosFailoverTest, PartitionOverflowsQueueAndCatchupConverges) {
  auto cfg = make_config(2, 4, 2);
  cfg.peer_queue_cap = 32;  // small, so the partition overflows quickly
  cfg.catchup_interval_ms = 100;
  Cluster cluster(std::move(cfg));

  // Blackhole site 0's link toward site 1. Outbound updates keep queueing
  // (drop-oldest at the cap) instead of vanishing at enqueue.
  net::ChaosRule rule;
  rule.partition = true;
  cluster.servers[0]->set_chaos(1, rule);

  client::Client writer(cluster.cfg, 0);
  for (int i = 1; i <= 150; ++i) {
    writer.put(0, "v" + std::to_string(i));
  }

  // The cap is 32, so >100 queued updates must have overflowed.
  const auto stats = cluster.servers[0]->peer_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].site, 1u);
  EXPECT_TRUE(stats[0].chaos_partitioned);
  EXPECT_GT(stats[0].overflow_drops, 0u);
  EXPECT_GE(stats[0].queued, 1u);

  // The scrape shows the active rule (2 = partition) alongside the drops.
  const auto text = writer.metrics_text();
  EXPECT_EQ(
      metric_value(text, "ccpr_peer_chaos_active{site=\"0\",peer=\"1\"}"),
      2.0);
  EXPECT_GT(
      metric_value(text,
                   "ccpr_peer_overflow_drops_total{site=\"0\",peer=\"1\"}"),
      0.0);

  // Heal. Catch-up detects the channel gap and resends from the retained
  // window, so site 1 still converges to the newest value.
  cluster.servers[0]->clear_chaos();
  client::Client reader(cluster.cfg, 1);
  EXPECT_TRUE(eventually(
      [&] { return reader.get(0).data == "v150"; }, 15'000ms))
      << "site 1 never caught up; last=" << reader.get(0).data;
  // The overflow-dropped updates were resent by anti-entropy, not merely
  // replayed from the surviving queue tail.
  EXPECT_TRUE(eventually(
      [&] {
        return metric_value(writer.metrics_text(),
                            "ccpr_catchup_resent_total{site=\"0\"}") > 0.0;
      },
      10'000ms))
      << "site 0 never resent the dropped updates";
}

TEST(ChaosFailoverTest, SuspicionRoutesFetchesAndFastFailsReads) {
  auto cfg = make_config(3, 6, 2);
  cfg.heartbeat_interval_us = 50'000;   // 50ms pings
  cfg.suspect_after_us = 300'000;       // suspect after 300ms of silence
  cfg.protocol.fetch_timeout_us = 200'000;
  Cluster cluster(std::move(cfg));

  // Ring placement: var 1 lives at {1, 2}; site 0 must fetch it remotely.
  ASSERT_FALSE(cluster.servers[0]->replica_map().replicated_at(1, 0));
  ASSERT_TRUE(cluster.servers[0]->replica_map().replicated_at(1, 1));
  ASSERT_TRUE(cluster.servers[0]->replica_map().replicated_at(1, 2));

  client::Client writer(cluster.cfg, 1);
  writer.put(1, "payload");

  client::Client cli(cluster.cfg, 0);
  // Warm-up: remote fetch with everything healthy.
  EXPECT_TRUE(eventually(
      [&] { return cli.get(1).data == "payload"; }, 5'000ms));

  // Partition site 0 from site 1 only: heartbeats stop both ways (0 parks
  // its pings, discards 1's), so 0 suspects 1.
  net::ChaosRule rule;
  rule.partition = true;
  cluster.servers[0]->set_chaos(1, rule);
  ASSERT_TRUE(eventually(
      [&] {
        const auto st = cli.status();
        return st.suspected_peers == std::vector<causal::SiteId>{1};
      },
      5'000ms))
      << "site 0 never suspected site 1";

  // Fetch routing now skips the suspected replica: reads of var 1 come
  // from site 2 and still succeed.
  EXPECT_EQ(cli.get(1).data, "payload");
  const auto text = cli.metrics_text();
  // The per-peer gauge for site 1 must read 1 and the skip counter must
  // have advanced past zero.
  EXPECT_EQ(metric_value(text, "ccpr_peer_suspected{site=\"0\",peer=\"1\"}"),
            1.0);
  EXPECT_GT(metric_value(text, "ccpr_fetch_suspect_skips_total{site=\"0\"}"),
            0.0);

  // Now blackhole every peer: all replicas of var 1 are suspected, so the
  // read fails fast with kUnavailable instead of waiting out the fetch.
  cluster.servers[0]->set_chaos(2, rule);
  ASSERT_TRUE(eventually(
      [&] { return cli.status().suspected_peers.size() == 2; }, 5'000ms));
  client::Client::Options no_retry;
  no_retry.retry.enabled = false;
  client::Client bare(cluster.cfg, 0, no_retry);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    (void)bare.get(1);
    FAIL() << "read should have failed fast";
  } catch (const client::Error& e) {
    EXPECT_EQ(e.kind(), client::ErrorKind::kServer);
    EXPECT_TRUE(e.retryable());
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, 2s) << "fast-fail path did not engage";
  EXPECT_GT(metric_value(cli.metrics_text(),
                         "ccpr_reads_fast_failed_total{site=\"0\"}"),
            0.0);

  // Heal: acks resume, suspicion clears, reads work everywhere again.
  cluster.servers[0]->clear_chaos();
  EXPECT_TRUE(eventually(
      [&] { return cli.status().suspected_peers.empty(); }, 5'000ms));
  EXPECT_EQ(cli.get(1).data, "payload");
}

TEST(ChaosFailoverTest, ClientFailsOverWhenItsSiteDies) {
  auto cfg = make_config(3, 6, 3);
  Cluster cluster(std::move(cfg));

  client::Client::Options fopts;
  fopts.retry.enabled = true;
  fopts.retry.failover = true;
  fopts.retry.op_deadline = 8s;
  fopts.connect_timeout = 500ms;
  client::Client cli(cluster.cfg, 0, fopts);

  // Ops at the home site; responses piggyback coverage tokens for the
  // other sites (the failover luggage).
  cli.put(0, "before-crash");
  EXPECT_EQ(cli.get(0).data, "before-crash");

  // A session without failover watches the same crash fail fast instead:
  // typed, retryable, and well before the deadline.
  client::Client::Options plain;
  plain.retry.enabled = true;
  plain.retry.failover = false;
  plain.retry.max_attempts = 2;
  plain.retry.op_deadline = 2s;
  plain.connect_timeout = 200ms;
  client::Client pinned(cluster.cfg, 0, plain);
  pinned.ping();

  // Let propagation drain, then kill the home site.
  std::this_thread::sleep_for(200ms);
  cluster.servers[0]->stop();
  cluster.servers[0].reset();

  // The failover client transparently moves to another site and keeps its
  // session: read-your-writes survives because the new site must cover
  // the cached token before serving.
  EXPECT_EQ(cli.get(0).data, "before-crash");
  EXPECT_NE(cli.site(), 0u);
  EXPECT_GE(cli.failovers(), 1u);
  cli.put(0, "after-crash");
  EXPECT_EQ(cli.get(0).data, "after-crash");

  const auto t0 = std::chrono::steady_clock::now();
  try {
    (void)pinned.get(0);
    FAIL() << "pinned client should not survive its site";
  } catch (const client::Error& e) {
    EXPECT_TRUE(e.kind() == client::ErrorKind::kConnect ||
                e.kind() == client::ErrorKind::kTimeout)
        << e.kind_name();
    EXPECT_TRUE(e.retryable());
  }
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 6s);

  // A brand-new failover session whose preferred site is already dead
  // starts at the next nearest site instead of failing to construct.
  client::Client fresh(cluster.cfg, 0, fopts);
  EXPECT_NE(fresh.site(), 0u);
  EXPECT_GE(fresh.failovers(), 1u);
  EXPECT_EQ(fresh.get(0).data, "after-crash");
}

TEST(ChaosFailoverTest, PutWithRepeatedRequestIdReplaysStoredResult) {
  auto cfg = make_config(1, 2, 1);
  Cluster cluster(std::move(cfg));

  net::Socket sock =
      net::tcp_dial("127.0.0.1", cluster.cfg.sites[0].client_port);
  ASSERT_TRUE(sock.valid());

  const auto put_once = [&](std::uint64_t session, std::uint64_t req_id,
                            const std::string& value) {
    net::Encoder req;
    req.u8(static_cast<std::uint8_t>(server::ClientOp::kPut));
    req.varint(0);  // var
    req.bytes(value);
    req.u8(server::kReqHasRequestId);
    req.varint(session);
    req.varint(req_id);
    EXPECT_TRUE(server::write_client_frame(sock.fd(), req.buffer()));
    auto resp =
        server::read_client_frame(sock.fd(), net::kDefaultMaxFrameBytes);
    EXPECT_TRUE(resp.has_value());
    return std::move(*resp);
  };

  struct Decoded {
    std::uint64_t writer, seq;
    std::uint8_t flags;
  };
  const auto decode = [](const std::vector<std::uint8_t>& resp) {
    net::Decoder dec(resp);
    EXPECT_EQ(dec.u8(), 0);  // kOk
    Decoded d{};
    d.writer = dec.varint();
    d.seq = dec.varint();
    (void)dec.varint();  // lamport
    d.flags = dec.u8();
    EXPECT_TRUE(dec.ok());
    return d;
  };

  // The same (session, request-id) pair executed once, replayed once.
  const auto first = decode(put_once(77, 9, "the-value"));
  EXPECT_EQ(first.flags & server::kRespDupReplay, 0);
  const auto replay = decode(put_once(77, 9, "the-value"));
  EXPECT_NE(replay.flags & server::kRespDupReplay, 0);
  EXPECT_EQ(replay.writer, first.writer);
  EXPECT_EQ(replay.seq, first.seq);

  // A fresh request id from the same session executes for real again.
  const auto next = decode(put_once(77, 10, "the-value-2"));
  EXPECT_EQ(next.flags & server::kRespDupReplay, 0);
  EXPECT_EQ(next.seq, first.seq + 1);

  client::Client check(cluster.cfg, 0);
  EXPECT_EQ(check.get(0).data, "the-value-2");
}

}  // namespace
}  // namespace ccpr
