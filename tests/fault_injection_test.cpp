// End-to-end fault-injection: the causal algorithms over a lossy,
// duplicating network.
//
// Two claims: (a) without the reliability layer the offline checker detects
// the broken channel assumption (lost updates), proving the oracle is live;
// (b) with the ReliableChannelTransport stacked in, every algorithm retains
// full causal consistency over heavy loss and duplication.
#include <gtest/gtest.h>

#include <memory>

#include "checker/causal_checker.hpp"
#include "test_support.hpp"
#include "workload/workload.hpp"

namespace ccpr::causal {
namespace {

Program small_workload(const ReplicaMap& rmap, std::uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.ops_per_site = 120;
  spec.write_rate = 0.4;
  spec.value_bytes = 24;
  spec.seed = seed;
  return workload::generate_program(spec, rmap);
}

TEST(FaultInjectionTest, CheckerDetectsLostUpdatesWithoutRecovery) {
  // Drop updates at the raw transport with no reliability layer: simulate by
  // NOT stacking the reliable channel — SimCluster only stacks it together
  // with faults, so instead drive the loss through a one-shot harness: a
  // cluster whose drop happens above the reliability layer is not
  // constructible, so we emulate the bare-lossy case with Eventual (no
  // waiting, so dropped updates cannot wedge activation predicates).
  SimCluster::Options opts;
  opts.latency = std::make_unique<sim::ConstantLatency>(5'000);
  SimCluster c(Algorithm::kEventual, ReplicaMap::even(3, 6, 2),
               std::move(opts));
  // Manually lose an update: write to a var replicated at {0,1} but check
  // completeness against a doctored map claiming it also lives at site 2.
  c.write(0, 0, "x");
  c.run();
  const auto fake_map = ReplicaMap::even(3, 6, 3);
  checker::CheckOptions copts;
  const auto result =
      checker::check_causal_consistency(c.history(), fake_map, copts);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violations[0].find("lost update"), std::string::npos);
}

struct FaultSweepParam {
  Algorithm alg;
  std::uint32_t p;
  double drop;
  double dup;
  const char* name;
};

class FaultSweep : public ::testing::TestWithParam<FaultSweepParam> {};

TEST_P(FaultSweep, CausalOverLossyNetworkWithReliableChannels) {
  const auto& param = GetParam();
  const std::uint32_t n = 4, q = 8;
  const auto rmap = ReplicaMap::even(n, q, param.p);
  const Program program = small_workload(rmap, 21);

  SimCluster::Options opts;
  opts.latency = std::make_unique<sim::UniformLatency>(2'000, 25'000);
  opts.latency_seed = 3;
  opts.mean_think_us = 2'000;
  opts.drop_rate = param.drop;
  opts.duplicate_rate = param.dup;
  opts.fault_seed = 1234;

  SimCluster cluster(param.alg, ReplicaMap::even(n, q, param.p),
                     std::move(opts));
  cluster.run_program(program);

  EXPECT_EQ(cluster.pending_updates(), 0u);
  if (param.drop > 0) {
    EXPECT_GT(cluster.messages_dropped(), 0u);
    EXPECT_GT(cluster.retransmissions(), 0u);
  }
  ccpr::testing::expect_causal(cluster);
}

INSTANTIATE_TEST_SUITE_P(
    LossyNetworks, FaultSweep,
    ::testing::Values(
        FaultSweepParam{Algorithm::kOptTrack, 2, 0.25, 0.0, "OptTrack_drop"},
        FaultSweepParam{Algorithm::kOptTrack, 2, 0.0, 0.3, "OptTrack_dup"},
        FaultSweepParam{Algorithm::kOptTrack, 2, 0.2, 0.2,
                        "OptTrack_drop_dup"},
        FaultSweepParam{Algorithm::kFullTrack, 2, 0.25, 0.0,
                        "FullTrack_drop"},
        FaultSweepParam{Algorithm::kOptTrackCRP, 4, 0.25, 0.1, "CRP_mixed"},
        FaultSweepParam{Algorithm::kOptP, 4, 0.25, 0.1, "OptP_mixed"}),
    [](const ::testing::TestParamInfo<FaultSweepParam>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace ccpr::causal
