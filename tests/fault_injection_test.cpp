// End-to-end fault-injection: the causal algorithms over a lossy,
// duplicating network.
//
// Two claims: (a) without the reliability layer the offline checker detects
// the broken channel assumption (lost updates), proving the oracle is live;
// (b) with the ReliableChannelTransport stacked in, every algorithm retains
// full causal consistency over heavy loss and duplication.
#include <gtest/gtest.h>

#include <memory>

#include "checker/causal_checker.hpp"
#include "test_support.hpp"
#include "workload/workload.hpp"

namespace ccpr::causal {
namespace {

Program small_workload(const ReplicaMap& rmap, std::uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.ops_per_site = 120;
  spec.write_rate = 0.4;
  spec.value_bytes = 24;
  spec.seed = seed;
  return workload::generate_program(spec, rmap);
}

TEST(FaultInjectionTest, CheckerDetectsLostUpdatesWithoutRecovery) {
  // Drop updates at the raw transport with no reliability layer: simulate by
  // NOT stacking the reliable channel — SimCluster only stacks it together
  // with faults, so instead drive the loss through a one-shot harness: a
  // cluster whose drop happens above the reliability layer is not
  // constructible, so we emulate the bare-lossy case with Eventual (no
  // waiting, so dropped updates cannot wedge activation predicates).
  SimCluster::Options opts;
  opts.latency = std::make_unique<sim::ConstantLatency>(5'000);
  SimCluster c(Algorithm::kEventual, ReplicaMap::even(3, 6, 2),
               std::move(opts));
  // Manually lose an update: write to a var replicated at {0,1} but check
  // completeness against a doctored map claiming it also lives at site 2.
  c.write(0, 0, "x");
  c.run();
  const auto fake_map = ReplicaMap::even(3, 6, 3);
  checker::CheckOptions copts;
  const auto result =
      checker::check_causal_consistency(c.history(), fake_map, copts);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violations[0].find("lost update"), std::string::npos);
}

struct FaultSweepParam {
  Algorithm alg;
  std::uint32_t p;
  double drop;
  double dup;
  double delay = 0.0;
  double reorder = 0.0;
  const char* name;
};

class FaultSweep : public ::testing::TestWithParam<FaultSweepParam> {};

TEST_P(FaultSweep, CausalOverLossyNetworkWithReliableChannels) {
  const auto& param = GetParam();
  const std::uint32_t n = 4, q = 8;
  const auto rmap = ReplicaMap::even(n, q, param.p);
  const Program program = small_workload(rmap, 21);

  SimCluster::Options opts;
  opts.latency = std::make_unique<sim::UniformLatency>(2'000, 25'000);
  opts.latency_seed = 3;
  opts.mean_think_us = 2'000;
  opts.drop_rate = param.drop;
  opts.duplicate_rate = param.dup;
  opts.delay_rate = param.delay;
  opts.delay_min_us = 5'000;
  opts.delay_max_us = 60'000;
  opts.reorder_rate = param.reorder;
  opts.fault_seed = 1234;

  SimCluster cluster(param.alg, ReplicaMap::even(n, q, param.p),
                     std::move(opts));
  cluster.run_program(program);

  EXPECT_EQ(cluster.pending_updates(), 0u);
  if (param.drop > 0) {
    EXPECT_GT(cluster.messages_dropped(), 0u);
    EXPECT_GT(cluster.retransmissions(), 0u);
  }
  if (param.delay > 0) EXPECT_GT(cluster.messages_delayed(), 0u);
  if (param.reorder > 0) EXPECT_GT(cluster.messages_reordered(), 0u);
  ccpr::testing::expect_causal(cluster);
}

INSTANTIATE_TEST_SUITE_P(
    LossyNetworks, FaultSweep,
    ::testing::Values(
        FaultSweepParam{Algorithm::kOptTrack, 2, 0.25, 0.0, 0.0, 0.0,
                        "OptTrack_drop"},
        FaultSweepParam{Algorithm::kOptTrack, 2, 0.0, 0.3, 0.0, 0.0,
                        "OptTrack_dup"},
        FaultSweepParam{Algorithm::kOptTrack, 2, 0.2, 0.2, 0.0, 0.0,
                        "OptTrack_drop_dup"},
        FaultSweepParam{Algorithm::kOptTrack, 2, 0.0, 0.0, 0.3, 0.0,
                        "OptTrack_delay"},
        FaultSweepParam{Algorithm::kOptTrack, 2, 0.0, 0.0, 0.0, 0.3,
                        "OptTrack_reorder"},
        FaultSweepParam{Algorithm::kFullTrack, 2, 0.25, 0.0, 0.0, 0.0,
                        "FullTrack_drop"},
        FaultSweepParam{Algorithm::kFullTrack, 2, 0.15, 0.1, 0.2, 0.2,
                        "FullTrack_all_faults"},
        FaultSweepParam{Algorithm::kOptTrackCRP, 4, 0.25, 0.1, 0.0, 0.0,
                        "CRP_mixed"},
        FaultSweepParam{Algorithm::kOptTrackCRP, 4, 0.1, 0.0, 0.25, 0.15,
                        "CRP_delay_reorder"},
        FaultSweepParam{Algorithm::kOptP, 4, 0.25, 0.1, 0.0, 0.0,
                        "OptP_mixed"}),
    [](const ::testing::TestParamInfo<FaultSweepParam>& param_info) {
      return param_info.param.name;
    });

// Deterministic unit-level check of the new fault classes against a stub
// transport: with a fixed seed the decorator's delay defer hook and
// adjacent-transposition reorder are observable and exactly counted.
TEST(FaultInjectionTest, DelayAndReorderAreDeterministic) {
  struct StubTransport final : net::ITransport {
    void connect(net::SiteId, net::IMessageSink*) override {}
    void send(net::Message msg) override { sent.push_back(msg.chan_seq); }
    std::vector<std::uint64_t> sent;
  };
  struct Deferred {
    std::uint64_t us;
    std::function<void()> fn;
  };

  // Reorder only: every message swapped with its successor.
  {
    StubTransport stub;
    net::FaultyTransport::Options fopts;
    fopts.reorder_rate = 1.0;
    fopts.seed = 9;
    net::FaultyTransport faulty(stub, std::move(fopts));
    for (std::uint64_t i = 1; i <= 4; ++i) {
      net::Message m;
      m.chan_seq = i;
      faulty.send(std::move(m));
    }
    // 1 stashed; 2 flushes it (2,1); 3 stashed; 4 flushes it (4,3).
    EXPECT_EQ(stub.sent, (std::vector<std::uint64_t>{2, 1, 4, 3}));
    EXPECT_EQ(faulty.reordered(), 2u);
  }

  // Delay only: messages land on the defer hook, not the wire, until the
  // fake timer fires them.
  {
    StubTransport stub;
    std::vector<Deferred> timers;
    net::FaultyTransport::Options fopts;
    fopts.delay_rate = 1.0;
    fopts.delay_min_us = 500;
    fopts.delay_max_us = 500;
    fopts.seed = 9;
    fopts.defer = [&timers](std::uint64_t us, std::function<void()> fn) {
      timers.push_back({us, std::move(fn)});
    };
    net::FaultyTransport faulty(stub, std::move(fopts));
    net::Message m;
    m.chan_seq = 42;
    faulty.send(std::move(m));
    EXPECT_TRUE(stub.sent.empty());
    ASSERT_EQ(timers.size(), 1u);
    EXPECT_EQ(timers[0].us, 500u);
    EXPECT_EQ(faulty.delayed(), 1u);
    timers[0].fn();
    EXPECT_EQ(stub.sent, (std::vector<std::uint64_t>{42}));
  }
}

}  // namespace
}  // namespace ccpr::causal
