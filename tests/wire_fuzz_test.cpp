// Robustness fuzzing of the wire decoders: random byte soup must never
// crash, read out of bounds, or loop — the sticky error flag must trip
// instead. (AddressSanitizer/valgrind make these tests much stronger; they
// are still meaningful under plain builds because every read is
// bounds-checked.)
#include <gtest/gtest.h>

#include "causal/opt_log.hpp"
#include "net/wire.hpp"
#include "util/rng.hpp"

namespace ccpr::net {
namespace {

std::vector<std::uint8_t> random_bytes(util::Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> buf(len);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.below(256));
  return buf;
}

TEST(WireFuzzTest, DecoderSurvivesRandomInput) {
  util::Rng rng(0xfeed);
  for (int round = 0; round < 2000; ++round) {
    const auto buf = random_bytes(rng, rng.below(64));
    Decoder dec(buf.data(), buf.size());
    // Exercise a random sequence of reads; none may misbehave.
    for (int i = 0; i < 8; ++i) {
      switch (rng.below(5)) {
        case 0:
          dec.u8();
          break;
        case 1:
          dec.u32();
          break;
        case 2:
          dec.u64();
          break;
        case 3:
          dec.varint();
          break;
        default:
          dec.bytes();
          break;
      }
    }
    // Either everything decoded within bounds or the error latch is set;
    // remaining() must never underflow.
    EXPECT_LE(dec.remaining(), buf.size());
  }
}

TEST(WireFuzzTest, LogDecoderSurvivesRandomInput) {
  util::Rng rng(0xbead);
  for (int round = 0; round < 2000; ++round) {
    const auto buf = random_bytes(rng, rng.below(96));
    Decoder dec(buf.data(), buf.size());
    const causal::Log log = causal::decode_log(dec);
    if (dec.ok()) {
      // Whatever decoded must re-encode without issue.
      Encoder enc;
      causal::encode_log(enc, log);
    }
  }
}

TEST(WireFuzzTest, TruncatedValidMessagesFailCleanly) {
  // Build a valid log, then decode every strict prefix: all but the full
  // buffer must either fail or decode a shorter valid structure.
  causal::Log log{
      causal::LogEntry{1, 12345, causal::DestSet{0, 3, 7}},
      causal::LogEntry{2, 9, causal::DestSet{}},
  };
  Encoder enc;
  causal::encode_log(enc, log);
  const auto& buf = enc.buffer();
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    Decoder dec(buf.data(), cut);
    const causal::Log out = causal::decode_log(dec);
    if (cut < buf.size()) {
      // The entry count prefix promises more than a strict prefix holds,
      // so a successful decode of the *complete* structure is impossible.
      EXPECT_TRUE(!dec.ok() || out.size() < log.size() ||
                  out != log);
    }
  }
  Decoder full(buf.data(), buf.size());
  EXPECT_EQ(causal::decode_log(full), log);
  EXPECT_TRUE(full.ok());
}

TEST(WireFuzzTest, RoundTripRandomLogs) {
  util::Rng rng(0xc0de);
  for (int round = 0; round < 500; ++round) {
    causal::Log log;
    const std::uint64_t entries = rng.below(6);
    for (std::uint64_t e = 0; e < entries; ++e) {
      causal::LogEntry entry;
      entry.sender = static_cast<causal::SiteId>(rng.below(64));
      entry.clock = rng.below(1 << 20);
      const std::uint64_t dests = rng.below(5);
      for (std::uint64_t d = 0; d < dests; ++d) {
        entry.dests.insert(static_cast<causal::SiteId>(rng.below(64)));
      }
      log.push_back(std::move(entry));
    }
    Encoder enc;
    causal::encode_log(enc, log);
    Decoder dec(enc.buffer());
    EXPECT_EQ(causal::decode_log(dec), log);
    EXPECT_TRUE(dec.ok());
    EXPECT_TRUE(dec.exhausted());
  }
}

}  // namespace
}  // namespace ccpr::net
