// Robustness fuzzing of the wire decoders: random byte soup must never
// crash, read out of bounds, or loop — the sticky error flag must trip
// instead. (AddressSanitizer/valgrind make these tests much stronger; they
// are still meaningful under plain builds because every read is
// bounds-checked.)
#include <gtest/gtest.h>

#include "causal/opt_log.hpp"
#include "net/frame.hpp"
#include "net/wire.hpp"
#include "util/rng.hpp"

namespace ccpr::net {
namespace {

std::vector<std::uint8_t> random_bytes(util::Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> buf(len);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.below(256));
  return buf;
}

TEST(WireFuzzTest, DecoderSurvivesRandomInput) {
  util::Rng rng(0xfeed);
  for (int round = 0; round < 2000; ++round) {
    const auto buf = random_bytes(rng, rng.below(64));
    Decoder dec(buf.data(), buf.size());
    // Exercise a random sequence of reads; none may misbehave.
    for (int i = 0; i < 8; ++i) {
      switch (rng.below(5)) {
        case 0:
          dec.u8();
          break;
        case 1:
          dec.u32();
          break;
        case 2:
          dec.u64();
          break;
        case 3:
          dec.varint();
          break;
        default:
          dec.bytes();
          break;
      }
    }
    // Either everything decoded within bounds or the error latch is set;
    // remaining() must never underflow.
    EXPECT_LE(dec.remaining(), buf.size());
  }
}

TEST(WireFuzzTest, LogDecoderSurvivesRandomInput) {
  util::Rng rng(0xbead);
  for (int round = 0; round < 2000; ++round) {
    const auto buf = random_bytes(rng, rng.below(96));
    Decoder dec(buf.data(), buf.size());
    const causal::Log log = causal::decode_log(dec);
    if (dec.ok()) {
      // Whatever decoded must re-encode without issue.
      Encoder enc;
      causal::encode_log(enc, log);
    }
  }
}

TEST(WireFuzzTest, TruncatedValidMessagesFailCleanly) {
  // Build a valid log, then decode every strict prefix: all but the full
  // buffer must either fail or decode a shorter valid structure.
  causal::Log log{
      causal::LogEntry{1, 12345, causal::DestSet{0, 3, 7}},
      causal::LogEntry{2, 9, causal::DestSet{}},
  };
  Encoder enc;
  causal::encode_log(enc, log);
  const auto& buf = enc.buffer();
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    Decoder dec(buf.data(), cut);
    const causal::Log out = causal::decode_log(dec);
    if (cut < buf.size()) {
      // The entry count prefix promises more than a strict prefix holds,
      // so a successful decode of the *complete* structure is impossible.
      EXPECT_TRUE(!dec.ok() || out.size() < log.size() ||
                  out != log);
    }
  }
  Decoder full(buf.data(), buf.size());
  EXPECT_EQ(causal::decode_log(full), log);
  EXPECT_TRUE(full.ok());
}

TEST(WireFuzzTest, RoundTripRandomLogs) {
  util::Rng rng(0xc0de);
  for (int round = 0; round < 500; ++round) {
    causal::Log log;
    const std::uint64_t entries = rng.below(6);
    for (std::uint64_t e = 0; e < entries; ++e) {
      causal::LogEntry entry;
      entry.sender = static_cast<causal::SiteId>(rng.below(64));
      entry.clock = rng.below(1 << 20);
      const std::uint64_t dests = rng.below(5);
      for (std::uint64_t d = 0; d < dests; ++d) {
        entry.dests.insert(static_cast<causal::SiteId>(rng.below(64)));
      }
      log.push_back(std::move(entry));
    }
    Encoder enc;
    causal::encode_log(enc, log);
    Decoder dec(enc.buffer());
    EXPECT_EQ(causal::decode_log(dec), log);
    EXPECT_TRUE(dec.ok());
    EXPECT_TRUE(dec.exhausted());
  }
}

TEST(WireFuzzTest, FrameSizePrefixRejectsGarbage) {
  util::Rng rng(0xf7a3e);
  std::size_t accepted = 0;
  for (int round = 0; round < 4000; ++round) {
    // Mixed diet: pure byte soup (a random u32 almost always exceeds the
    // cap) plus crafted in-range prefixes so the accept path is exercised
    // too. Only exactly kFrameLenBytes with a value in (0, max] may decode,
    // and the decoded size must echo the little-endian u32 so the reader
    // allocates exactly what was declared.
    const std::uint32_t max = 1 + static_cast<std::uint32_t>(rng.below(1024));
    auto buf = random_bytes(rng, rng.below(8));
    if (rng.chance(0.5)) {
      const auto v = 1 + static_cast<std::uint32_t>(rng.below(2 * max));
      buf.assign({static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
                  static_cast<std::uint8_t>(v >> 16),
                  static_cast<std::uint8_t>(v >> 24)});
    }
    const auto size = decode_frame_size(buf.data(), buf.size(), max);
    if (size.has_value()) {
      ++accepted;
      ASSERT_EQ(buf.size(), kFrameLenBytes);
      EXPECT_GT(*size, 0u);
      EXPECT_LE(*size, max);
      std::uint32_t echo = 0;
      for (std::size_t i = 0; i < kFrameLenBytes; ++i) {
        echo |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
      }
      EXPECT_EQ(*size, echo);
    }
  }
  EXPECT_GT(accepted, 0u);  // the fuzz must exercise the accept path too
}

TEST(WireFuzzTest, FrameSizePrefixCapIsConfigurable) {
  // 0x00010000 = 65536 little-endian.
  const std::uint8_t prefix[kFrameLenBytes] = {0x00, 0x00, 0x01, 0x00};
  EXPECT_FALSE(decode_frame_size(prefix, sizeof prefix, 65535).has_value());
  ASSERT_TRUE(decode_frame_size(prefix, sizeof prefix, 65536).has_value());
  EXPECT_EQ(*decode_frame_size(prefix, sizeof prefix, 65536), 65536u);
  // An all-ones prefix must be rejected even by the default generous cap
  // rather than turning into a ~4 GiB allocation.
  const std::uint8_t huge[kFrameLenBytes] = {0xff, 0xff, 0xff, 0xff};
  EXPECT_FALSE(
      decode_frame_size(huge, sizeof huge, kDefaultMaxFrameBytes).has_value());
}

TEST(WireFuzzTest, FrameBodySurvivesRandomInput) {
  util::Rng rng(0xfa7e);
  for (int round = 0; round < 4000; ++round) {
    const auto buf = random_bytes(rng, rng.below(128));
    const auto frame = decode_frame_body(buf.data(), buf.size());
    if (frame.has_value()) {
      // Anything accepted must satisfy the envelope invariants and
      // re-encode to the same bytes (prefix included).
      EXPECT_LE(frame->msg.payload_bytes, frame->msg.body.size());
      const auto wire =
          encode_frame(frame->msg, frame->incarnation, frame->seq);
      ASSERT_GE(wire.size(), kFrameLenBytes);
      EXPECT_TRUE(std::equal(wire.begin() + kFrameLenBytes, wire.end(),
                             buf.begin(), buf.end()));
    }
  }
}

TEST(WireFuzzTest, FrameCorruptionNeverMisdecodesSilently) {
  // Flip every single byte of a valid frame body in turn: each mutant must
  // either be rejected or decode to something internally consistent — never
  // crash or produce an envelope whose payload exceeds its body.
  util::Rng rng(0x5eed5);
  Message msg;
  msg.kind = MsgKind::kUpdate;
  msg.src = 5;
  msg.dst = 1;
  msg.body = random_bytes(rng, 24);
  msg.payload_bytes = 10;
  const auto wire = encode_frame(msg, 0x1ca51, 1234567);
  for (std::size_t i = kFrameLenBytes; i < wire.size(); ++i) {
    for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80},
                                    std::uint8_t{0xff}}) {
      auto mutant = wire;
      mutant[i] = static_cast<std::uint8_t>(mutant[i] ^ flip);
      const auto frame = decode_frame_body(mutant.data() + kFrameLenBytes,
                                           mutant.size() - kFrameLenBytes);
      if (frame.has_value()) {
        EXPECT_LE(frame->msg.payload_bytes, frame->msg.body.size());
      }
    }
  }
}

}  // namespace
}  // namespace ccpr::net
