#include "sim/latency.hpp"

#include <gtest/gtest.h>

namespace ccpr::sim {
namespace {

TEST(ConstantLatencyTest, AlwaysSameDelay) {
  ConstantLatency lat(12345);
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(lat.sample(0, 1, rng), 12345);
}

TEST(UniformLatencyTest, StaysWithinBounds) {
  UniformLatency lat(100, 200);
  util::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const SimTime d = lat.sample(0, 1, rng);
    EXPECT_GE(d, 100);
    EXPECT_LE(d, 200);
  }
}

TEST(UniformLatencyTest, DegenerateRange) {
  UniformLatency lat(50, 50);
  util::Rng rng(3);
  EXPECT_EQ(lat.sample(2, 3, rng), 50);
}

TEST(LogNormalLatencyTest, PositiveAndHeavyTailed) {
  LogNormalLatency lat(10000.0, 0.8);
  util::Rng rng(4);
  SimTime max_seen = 0;
  for (int i = 0; i < 10000; ++i) {
    const SimTime d = lat.sample(0, 1, rng);
    EXPECT_GE(d, 0);
    max_seen = std::max(max_seen, d);
  }
  EXPECT_GT(max_seen, 30000);  // the tail reaches past 3x the median
}

TEST(GeoLatencyTest, UsesMatrixEntries) {
  // 2 sites: 0->1 is 100, 1->0 is 900, loopback 1.
  GeoLatency lat(2, {1, 100, 900, 1}, 0.0);
  util::Rng rng(5);
  EXPECT_EQ(lat.sample(0, 1, rng), 100);
  EXPECT_EQ(lat.sample(1, 0, rng), 900);
  EXPECT_EQ(lat.sample(0, 0, rng), 1);
}

TEST(GeoLatencyTest, TwoTierSeparatesRegions) {
  auto lat = GeoLatency::two_tier({0, 0, 1, 1}, 1000, 80000, 0.0);
  util::Rng rng(6);
  EXPECT_EQ(lat->sample(0, 1, rng), 1000);   // same region
  EXPECT_EQ(lat->sample(0, 2, rng), 80000);  // cross region
  EXPECT_EQ(lat->sample(3, 2, rng), 1000);
}

TEST(GeoLatencyTest, JitterPerturbsAroundBase) {
  auto lat = GeoLatency::two_tier({0, 1}, 1000, 50000, 0.2);
  util::Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const SimTime d = lat->sample(0, 1, rng);
    EXPECT_GT(d, 10000);
    sum += static_cast<double>(d);
  }
  EXPECT_NEAR(sum / 2000.0, 51000.0, 4000.0);  // E[lognormal(1,s)] slightly >1
}

}  // namespace
}  // namespace ccpr::sim
