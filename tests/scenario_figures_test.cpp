// Executable reproductions of the paper's explanatory figures (Figs. 1-3).
// Each test drives exactly the depicted message pattern and asserts the
// algorithm state the figure describes.
#include <gtest/gtest.h>

#include "causal/opt_track.hpp"
#include "causal/opt_track_crp.hpp"
#include "test_support.hpp"

namespace ccpr::causal {
namespace {

using ccpr::testing::constant_latency;
using ccpr::testing::expect_causal;

const OptTrack& ot(const SimCluster& c, SiteId s) {
  return dynamic_cast<const OptTrack&>(c.site(s));
}
const OptTrackCRP& crp(const SimCluster& c, SiteId s) {
  return dynamic_cast<const OptTrackCRP&>(c.site(s));
}

// ---- Fig. 1(b), Condition 1 ----
// Once update m is applied at s2, "s2 is a destination of m" must not be
// remembered in the causal future of apply_2(w): s2's own log and everything
// it piggybacks from then on exclude s2.
TEST(Fig1Scenario, Condition1DestinationForgottenAfterApply) {
  // var 0 replicated at {0, 2}: s0's write has destination s2.
  auto rmap = ReplicaMap::custom(3, {{0, 2}, {1, 2}});
  SimCluster c(Algorithm::kOptTrack, std::move(rmap), constant_latency(100));
  c.write(0, 0, "m");
  c.run();
  ASSERT_EQ(c.read(2, 0).data, "m");  // apply + return at s2
  for (const LogEntry& e : ot(c, 2).log()) {
    EXPECT_FALSE(e.dests.contains(2))
        << "s2 still remembers itself as a destination";
  }
  expect_causal(c);
}

// ---- Fig. 1(b), Condition 2 ----
// send(m) ->co send(m'), both destined to s2: after m' is sent, the sender's
// log entry for m no longer lists s2 (the later message subsumes it).
TEST(Fig1Scenario, Condition2LaterMessageSubsumesDestination) {
  auto rmap = ReplicaMap::custom(3, {{0, 2}, {0, 2}});
  SimCluster c(Algorithm::kOptTrack, std::move(rmap), constant_latency(100));
  c.write(0, 0, "m");   // m destined to s2
  c.write(0, 1, "m2");  // m' destined to s2, causally after m (program order)
  const Log& log = ot(c, 0).log();
  for (const LogEntry& e : log) {
    if (e.clock == 1) {
      EXPECT_TRUE(e.dests.empty())
          << "m's destination s2 must be subsumed by m'";
    }
  }
  c.run();
  expect_causal(c);
}

// ---- Fig. 2 ----
// A record whose destination list became empty is retained while it is the
// newest record from its sender, because piggybacking it cleans OTHER sites'
// logs: here s2 learns from the second read that its stale obligation
// "<s0, 1> still destined to s1" can be dropped.
TEST(Fig2Scenario, EmptyRecordCleansRemoteLogs) {
  auto rmap = ReplicaMap::custom(3, {{0, 1, 2}});
  SimCluster c(Algorithm::kOptTrack, std::move(rmap), constant_latency(100));
  c.write(0, 0, "v1");
  c.run();
  ASSERT_EQ(c.read(2, 0).data, "v1");
  // s2 now holds <s0, 1, {1}>: the delivery at s1 is the only unconfirmed
  // obligation worth carrying (s2 itself was pruned by Condition 1 at apply
  // time; the writer's own replica was discharged by the Apply vector that
  // the update gossiped).
  {
    const Log& log = ot(c, 2).log();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0].clock, 1u);
    EXPECT_EQ(log[0].dests, (DestSet{1}));
  }
  c.write(0, 0, "v2");  // subsumes write 1 everywhere
  c.run();
  ASSERT_EQ(c.read(2, 0).data, "v2");
  // The merge of write 2's piggybacked log (which carries write 1's record
  // with an empty destination list) must purge the stale obligation.
  {
    const Log& log = ot(c, 2).log();
    for (const LogEntry& e : log) {
      EXPECT_FALSE(e.clock == 1 && e.dests.contains(1))
          << "stale obligation for write 1 survived the merge";
    }
  }
  expect_causal(c);
}

// ---- Fig. 3 ----
// Full replication: after send_3(m(w')) the local log is reset to {w'}, and
// after receive_1(m(w')) only w' itself is remembered as LastWriteOn<x2>.
TEST(Fig3Scenario, CrpLogResetAndSingleEntryLastWriteOn) {
  SimCluster c(Algorithm::kOptTrackCRP, ReplicaMap::full(3, 3),
               constant_latency(100));
  // s1 writes x1 = v (the figure's w).
  c.write(1, 0, "v");
  c.run();
  // s3 (site 2 here) reads x1 then writes x2 = u (the figure's w').
  ASSERT_EQ(c.read(2, 0).data, "v");
  EXPECT_EQ(crp(c, 2).log().size(), 1u);  // {w}
  c.write(2, 1, "u");
  {
    const auto& log = crp(c, 2).log();
    ASSERT_EQ(log.size(), 1u);  // LOG_3 = {w'}
    EXPECT_EQ(log[0].sender, 2u);
    EXPECT_EQ(log[0].clock, 1u);
  }
  c.run();
  // s1 (site 0) received w'; only w' itself is remembered for x2, which a
  // read at s1 merges as a single 2-tuple.
  ASSERT_EQ(c.read(0, 1).data, "u");
  bool found = false;
  for (const auto& e : crp(c, 0).log()) {
    if (e.sender == 2) {
      EXPECT_EQ(e.clock, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  expect_causal(c);
}

}  // namespace
}  // namespace ccpr::causal
