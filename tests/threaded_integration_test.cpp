// The same protocol objects on real threads: concurrent application
// processes, real interleavings, then the same offline checker.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "causal/threaded_cluster.hpp"
#include "checker/causal_checker.hpp"
#include "util/rng.hpp"

namespace ccpr::causal {
namespace {

void expect_causal(const ThreadedCluster& c) {
  const auto result =
      checker::check_causal_consistency(c.history(), c.replica_map());
  EXPECT_TRUE(result.ok);
  for (const auto& v : result.violations) ADD_FAILURE() << v;
}

TEST(ThreadedClusterTest, BasicPutGet) {
  ThreadedCluster c(Algorithm::kOptTrack, ReplicaMap::even(3, 6, 2));
  c.write(0, 0, "hello");
  c.drain();
  EXPECT_EQ(c.read(1, 0).data, "hello");  // var 0 lives at {0, 1}
  EXPECT_EQ(c.read(2, 0).data, "hello");  // remote fetch
  expect_causal(c);
}

TEST(ThreadedClusterTest, ReadYourOwnWrites) {
  ThreadedCluster c(Algorithm::kOptTrack, ReplicaMap::even(2, 4, 2));
  for (int i = 0; i < 20; ++i) {
    const std::string v = "v" + std::to_string(i);
    c.write(0, 0, v);
    EXPECT_EQ(c.read(0, 0).data, v);
  }
  c.drain();
  expect_causal(c);
}

struct ThreadedSweepParam {
  Algorithm alg;
  std::uint32_t n;
  std::uint32_t p;
  const char* name;
  std::uint32_t shards = 1;  ///< engine shards per site (ShardGroup when >1)
};

class ThreadedSweep : public ::testing::TestWithParam<ThreadedSweepParam> {};

TEST_P(ThreadedSweep, ConcurrentClientsStayCausal) {
  const auto& param = GetParam();
  const std::uint32_t q = 12;
  ThreadedCluster::Options opts;
  opts.max_delay_us = 300;  // widen interleavings
  opts.protocol.engine_shards = param.shards;
  ThreadedCluster c(param.alg, ReplicaMap::even(param.n, q, param.p), opts);

  std::vector<std::thread> clients;
  for (SiteId s = 0; s < param.n; ++s) {
    clients.emplace_back([&c, s, q] {
      util::Rng rng(1000 + s);
      for (int i = 0; i < 60; ++i) {
        const auto x = static_cast<VarId>(rng.below(q));
        if (rng.chance(0.4)) {
          c.write(s, x, "s" + std::to_string(s) + ":" + std::to_string(i));
        } else {
          (void)c.read(s, x);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  c.drain();
  EXPECT_EQ(c.pending_updates(), 0u);
  expect_causal(c);
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, ThreadedSweep,
    ::testing::Values(
        ThreadedSweepParam{Algorithm::kOptTrack, 4, 2, "OptTrack_partial"},
        ThreadedSweepParam{Algorithm::kOptTrack, 4, 2,
                           "OptTrack_partial_shards4", 4},
        ThreadedSweepParam{Algorithm::kOptTrack, 4, 4, "OptTrack_full"},
        ThreadedSweepParam{Algorithm::kFullTrack, 4, 2, "FullTrack_partial"},
        ThreadedSweepParam{Algorithm::kOptTrackCRP, 4, 4, "CRP"},
        ThreadedSweepParam{Algorithm::kOptP, 4, 4, "OptP"},
        ThreadedSweepParam{Algorithm::kAhamad, 4, 4, "Ahamad"}),
    [](const ::testing::TestParamInfo<ThreadedSweepParam>& param_info) {
      return param_info.param.name;
    });

TEST(ThreadedClusterTest, MetricsAccumulateAcrossSites) {
  ThreadedCluster c(Algorithm::kOptTrackCRP, ReplicaMap::full(3, 3));
  c.write(0, 0, "a");
  c.write(1, 1, "b");
  c.drain();
  const auto m = c.metrics();
  EXPECT_EQ(m.writes, 2u);
  EXPECT_EQ(m.update_msgs, 4u);  // 2 writes x (n-1) destinations
}

}  // namespace
}  // namespace ccpr::causal
