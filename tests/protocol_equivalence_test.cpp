// Cross-validation between algorithms: on identical workloads and identical
// network randomness, different causal algorithms must agree on everything
// causality forces — message counts by kind, operation counts, per-writer
// apply orders — while differing exactly where the paper says they differ
// (metadata size).
#include <gtest/gtest.h>

#include <memory>

#include "test_support.hpp"
#include "workload/workload.hpp"

namespace ccpr::causal {
namespace {

std::unique_ptr<SimCluster> run_workload(Algorithm alg,
                                         const ReplicaMap& rmap,
                                         double write_rate,
                                         std::uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.ops_per_site = 200;
  spec.write_rate = write_rate;
  spec.value_bytes = 16;
  spec.seed = seed;
  const Program program = workload::generate_program(spec, rmap);

  SimCluster::Options opts;
  opts.latency = std::make_unique<sim::UniformLatency>(5'000, 40'000);
  opts.latency_seed = 99;
  auto cluster = std::make_unique<SimCluster>(
      alg, ReplicaMap::even(rmap.sites(), rmap.vars(),
                            static_cast<std::uint32_t>(
                                rmap.replication_factor() + 0.5)),
      std::move(opts));
  cluster->run_program(program);
  return cluster;
}

TEST(ProtocolEquivalenceTest, FullTrackAndOptTrackSendIdenticalCounts) {
  const auto rmap = ReplicaMap::even(5, 10, 2);
  const auto ft = run_workload(Algorithm::kFullTrack, rmap, 0.4, 5);
  const auto ot = run_workload(Algorithm::kOptTrack, rmap, 0.4, 5);
  const auto mf = ft->metrics();
  const auto mo = ot->metrics();
  EXPECT_EQ(mf.update_msgs, mo.update_msgs);
  EXPECT_EQ(mf.fetch_req_msgs, mo.fetch_req_msgs);
  EXPECT_EQ(mf.writes, mo.writes);
  EXPECT_EQ(mf.reads, mo.reads);
  ccpr::testing::expect_causal(*ft);
  ccpr::testing::expect_causal(*ot);
}

TEST(ProtocolEquivalenceTest, OptTrackMetadataSmallerThanFullTrack) {
  // Table I: Full-Track piggybacks O(n^2) per message, Opt-Track O(n)
  // amortized. At n=8 the gap must already be visible.
  const auto rmap = ReplicaMap::even(8, 16, 3);
  const auto ft = run_workload(Algorithm::kFullTrack, rmap, 0.4, 6);
  const auto ot = run_workload(Algorithm::kOptTrack, rmap, 0.4, 6);
  EXPECT_LT(ot->metrics().control_bytes, ft->metrics().control_bytes);
}

TEST(ProtocolEquivalenceTest, FullReplicationQuartetAgreesOnCounts) {
  const auto rmap = ReplicaMap::full(4, 8);
  const auto crp = run_workload(Algorithm::kOptTrackCRP, rmap, 0.3, 9);
  const auto optp = run_workload(Algorithm::kOptP, rmap, 0.3, 9);
  const auto ft = run_workload(Algorithm::kFullTrack, rmap, 0.3, 9);
  const auto ah = run_workload(Algorithm::kAhamad, rmap, 0.3, 9);
  const auto m1 = crp->metrics();
  const auto m2 = optp->metrics();
  const auto m3 = ft->metrics();
  const auto m4 = ah->metrics();
  EXPECT_EQ(m1.update_msgs, m2.update_msgs);
  EXPECT_EQ(m2.update_msgs, m3.update_msgs);
  EXPECT_EQ(m3.update_msgs, m4.update_msgs);
  EXPECT_EQ(m1.remote_reads, 0u);
  EXPECT_EQ(m2.remote_reads, 0u);
  ccpr::testing::expect_causal(*crp);
  ccpr::testing::expect_causal(*optp);
  ccpr::testing::expect_causal(*ft);
  ccpr::testing::expect_causal(*ah);
}

TEST(ProtocolEquivalenceTest, CrpMetadataSmallerThanOptP) {
  // The paper's §III-C claim: Opt-Track-CRP beats OptP on message size.
  const auto rmap = ReplicaMap::full(12, 8);
  const auto crp = run_workload(Algorithm::kOptTrackCRP, rmap, 0.5, 10);
  const auto optp = run_workload(Algorithm::kOptP, rmap, 0.5, 10);
  EXPECT_LT(crp->metrics().control_bytes, optp->metrics().control_bytes);
  // And on space: O(max(n, q)) vs O(nq).
  EXPECT_LT(crp->metrics().meta_state_bytes.peak(),
            optp->metrics().meta_state_bytes.peak());
}

TEST(ProtocolEquivalenceTest, OptimalAlgorithmsApplyIdenticallyUnderFullReplication) {
  // All four A_OPT algorithms admit an update at the same earliest instant;
  // with identical workload, think times and latency draws, their per-site
  // apply sequences must therefore be *identical* — Opt-Track-CRP really is
  // a behaviour-preserving specialization of Opt-Track, which in turn
  // matches Full-Track and the reconstructed OptP.
  const auto rmap = ReplicaMap::full(4, 8);
  const auto a = run_workload(Algorithm::kFullTrack, rmap, 0.4, 12);
  const auto b = run_workload(Algorithm::kOptTrack, rmap, 0.4, 12);
  const auto c = run_workload(Algorithm::kOptTrackCRP, rmap, 0.4, 12);
  const auto d = run_workload(Algorithm::kOptP, rmap, 0.4, 12);
  const auto ha = a->history().applies();
  for (const auto* other : {&*b, &*c, &*d}) {
    const auto hb = other->history().applies();
    ASSERT_EQ(ha.size(), hb.size());
    for (std::size_t i = 0; i < ha.size(); ++i) {
      EXPECT_EQ(ha[i].site, hb[i].site) << "divergence at apply " << i;
      EXPECT_TRUE(ha[i].write == hb[i].write) << "divergence at apply " << i;
    }
  }
}

TEST(ProtocolEquivalenceTest, SameSeedSameRun) {
  // Full determinism: two identical configurations produce byte-identical
  // traffic and histories.
  const auto rmap = ReplicaMap::even(4, 8, 2);
  const auto a = run_workload(Algorithm::kOptTrack, rmap, 0.4, 3);
  const auto b = run_workload(Algorithm::kOptTrack, rmap, 0.4, 3);
  const auto ma = a->metrics();
  const auto mb = b->metrics();
  EXPECT_EQ(ma.control_bytes, mb.control_bytes);
  EXPECT_EQ(ma.payload_bytes, mb.payload_bytes);
  EXPECT_EQ(ma.messages_total(), mb.messages_total());
  const auto ha = a->history().applies();
  const auto hb = b->history().applies();
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha[i].site, hb[i].site);
    EXPECT_TRUE(ha[i].write == hb[i].write);
  }
}

}  // namespace
}  // namespace ccpr::causal
