// TcpTransport tests over real loopback sockets: FIFO delivery, lazy dial
// with backoff (peer not yet listening), reconnect after a peer restart,
// loopback fast path, flush, and per-peer stats.
#include "net/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace ccpr::net {
namespace {

using namespace std::chrono_literals;

/// Reserve n distinct loopback ports by briefly binding port 0. The sockets
/// are closed before use; SO_REUSEADDR makes the rebind reliable in practice.
std::vector<std::uint16_t> pick_ports(std::size_t n) {
  std::vector<Socket> held;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint16_t port = 0;
    held.push_back(tcp_listen("127.0.0.1", 0, &port));
    EXPECT_TRUE(held.back().valid());
    ports.push_back(port);
  }
  return ports;  // listeners close here
}

class CollectSink : public IMessageSink {
 public:
  void deliver(Message msg) override {
    std::lock_guard lk(mu_);
    msgs_.push_back(std::move(msg));
  }

  std::vector<Message> snapshot() const {
    std::lock_guard lk(mu_);
    return msgs_;
  }

  std::size_t count() const {
    std::lock_guard lk(mu_);
    return msgs_.size();
  }

  bool wait_for_count(std::size_t n,
                      std::chrono::milliseconds timeout = 5s) const {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (count() < n) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(2ms);
    }
    return true;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Message> msgs_;
};

Message make_msg(SiteId src, SiteId dst, std::uint8_t tag) {
  Message m;
  m.kind = MsgKind::kUpdate;
  m.src = src;
  m.dst = dst;
  m.body = {tag, 0x5a};
  m.payload_bytes = 1;
  return m;
}

TcpTransport::Options options_for(SiteId self,
                                  const std::vector<std::uint16_t>& ports) {
  TcpTransport::Options opts;
  opts.self = self;
  opts.listen_port = ports[self];
  for (SiteId s = 0; s < ports.size(); ++s) {
    if (s != self) opts.peers.push_back({s, "127.0.0.1", ports[s]});
  }
  opts.jitter_seed = 0x7e57 + self;
  return opts;
}

TEST(TcpTransportTest, PairExchangesFifo) {
  const auto ports = pick_ports(2);
  metrics::Metrics ma, mb;
  CollectSink sa, sb;
  TcpTransport a(options_for(0, ports), ma);
  TcpTransport b(options_for(1, ports), mb);
  a.connect(0, &sa);
  b.connect(1, &sb);
  ASSERT_TRUE(a.start());
  ASSERT_TRUE(b.start());

  constexpr std::size_t kEach = 200;
  for (std::size_t i = 0; i < kEach; ++i) {
    a.send(make_msg(0, 1, static_cast<std::uint8_t>(i)));
    b.send(make_msg(1, 0, static_cast<std::uint8_t>(i)));
  }
  EXPECT_TRUE(a.flush(5s));
  EXPECT_TRUE(b.flush(5s));
  ASSERT_TRUE(sb.wait_for_count(kEach));
  ASSERT_TRUE(sa.wait_for_count(kEach));

  // FIFO per channel: tags arrive in send order on both directions.
  const auto at_b = sb.snapshot();
  const auto at_a = sa.snapshot();
  for (std::size_t i = 0; i < kEach; ++i) {
    EXPECT_EQ(at_b[i].body[0], static_cast<std::uint8_t>(i));
    EXPECT_EQ(at_b[i].src, 0u);
    EXPECT_EQ(at_a[i].body[0], static_cast<std::uint8_t>(i));
  }

  const auto stats = a.peer_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].site, 1u);
  EXPECT_EQ(stats[0].msgs_sent, kEach);
  EXPECT_EQ(stats[0].msgs_recv, kEach);
  EXPECT_GE(stats[0].connects, 1u);
  EXPECT_EQ(stats[0].queued, 0u);
  EXPECT_GT(stats[0].bytes_sent, kEach);  // framed: > 1 byte per message

  // Transport metrics counted the sends by kind and split the bytes.
  EXPECT_EQ(a.metrics_snapshot().update_msgs, kEach);
  EXPECT_EQ(a.metrics_snapshot().payload_bytes, kEach);
  EXPECT_EQ(a.metrics_snapshot().control_bytes, kEach);

  a.stop();
  b.stop();
}

TEST(TcpTransportTest, LoopbackDeliversWithoutSockets) {
  const auto ports = pick_ports(1);
  metrics::Metrics m;
  CollectSink sink;
  TcpTransport t(options_for(0, ports), m);
  t.connect(0, &sink);
  ASSERT_TRUE(t.start());
  t.send(make_msg(0, 0, 0xaa));
  ASSERT_TRUE(sink.wait_for_count(1));
  EXPECT_EQ(sink.snapshot()[0].body[0], 0xaa);
  t.stop();
}

TEST(TcpTransportTest, QueuesUntilPeerComesUp) {
  const auto ports = pick_ports(2);
  metrics::Metrics ma, mb;
  CollectSink sa, sb;
  TcpTransport a(options_for(0, ports), ma);
  a.connect(0, &sa);
  ASSERT_TRUE(a.start());

  // Peer 1 is not listening yet: sends must queue, the sender thread
  // retrying its dial with backoff.
  constexpr std::size_t kEach = 50;
  for (std::size_t i = 0; i < kEach; ++i) {
    a.send(make_msg(0, 1, static_cast<std::uint8_t>(i)));
  }
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(a.peer_stats()[0].msgs_sent, 0u);
  EXPECT_GE(a.peer_stats()[0].queued, 1u);

  TcpTransport b(options_for(1, ports), mb);
  b.connect(1, &sb);
  ASSERT_TRUE(b.start());
  ASSERT_TRUE(sb.wait_for_count(kEach));
  const auto at_b = sb.snapshot();
  for (std::size_t i = 0; i < kEach; ++i) {
    EXPECT_EQ(at_b[i].body[0], static_cast<std::uint8_t>(i));
  }
  a.stop();
  b.stop();
}

TEST(TcpTransportTest, ReconnectsAfterPeerRestart) {
  const auto ports = pick_ports(2);
  metrics::Metrics ma;
  CollectSink sa;
  TcpTransport a(options_for(0, ports), ma);
  a.connect(0, &sa);
  ASSERT_TRUE(a.start());

  std::size_t tag = 0;
  {
    metrics::Metrics mb;
    CollectSink sb;
    TcpTransport b(options_for(1, ports), mb);
    b.connect(1, &sb);
    ASSERT_TRUE(b.start());
    for (int i = 0; i < 10; ++i) {
      a.send(make_msg(0, 1, static_cast<std::uint8_t>(tag++)));
    }
    ASSERT_TRUE(sb.wait_for_count(10));
    b.stop();  // peer goes away (state lost, port freed)
  }

  // A TCP sender only discovers a dead peer when a write fails, and a few
  // writes can land in the kernel buffer of a reset socket before the RST
  // is processed (those bytes are lost — the documented crash window). Feed
  // probe messages until the sender's queue stalls, which means the death
  // was detected and everything queued from now on survives.
  std::this_thread::sleep_for(50ms);
  const auto probe_deadline = std::chrono::steady_clock::now() + 5s;
  while (a.peer_stats()[0].queued == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), probe_deadline);
    a.send(make_msg(0, 1, 0xfe));
    std::this_thread::sleep_for(10ms);
  }

  for (int i = 0; i < 10; ++i) {
    a.send(make_msg(0, 1, static_cast<std::uint8_t>(tag++)));
  }
  metrics::Metrics mb2;
  CollectSink sb2;
  TcpTransport b2(options_for(1, ports), mb2);
  b2.connect(1, &sb2);
  ASSERT_TRUE(b2.start());
  // Wait for the batch's last tag, then check the batch arrived in order
  // (ignoring surviving probes).
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (true) {
    const auto msgs = sb2.snapshot();
    if (!msgs.empty() && msgs.back().body[0] == 19) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(2ms);
  }
  std::vector<std::uint8_t> batch_tags;
  for (const auto& m : sb2.snapshot()) {
    if (m.body[0] != 0xfe) batch_tags.push_back(m.body[0]);
  }
  ASSERT_EQ(batch_tags.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(batch_tags[i], static_cast<std::uint8_t>(10 + i));
  }
  EXPECT_GE(a.peer_stats()[0].connects, 2u);
  a.stop();
  b2.stop();
}

TEST(TcpTransportTest, RestartedSenderIsNotDroppedAsDuplicate) {
  const auto ports = pick_ports(2);
  metrics::Metrics mb;
  CollectSink sb;
  TcpTransport b(options_for(1, ports), mb);
  b.connect(1, &sb);
  ASSERT_TRUE(b.start());

  // First incarnation of site 0 pushes b's seq watermark for the channel
  // up to 10, then dies.
  {
    metrics::Metrics ma;
    CollectSink sa;
    TcpTransport a(options_for(0, ports), ma);
    a.connect(0, &sa);
    ASSERT_TRUE(a.start());
    for (int i = 0; i < 10; ++i) {
      a.send(make_msg(0, 1, static_cast<std::uint8_t>(i)));
    }
    ASSERT_TRUE(sb.wait_for_count(10));
    a.stop();
  }

  // Restarted site 0: a fresh process whose seq space restarts at 1. Its
  // frames carry a new incarnation, so b must reset the watermark and
  // deliver them instead of dropping them as duplicates of seqs 1..10.
  metrics::Metrics ma2;
  CollectSink sa2;
  TcpTransport a2(options_for(0, ports), ma2);
  a2.connect(0, &sa2);
  ASSERT_TRUE(a2.start());
  for (int i = 0; i < 5; ++i) {
    a2.send(make_msg(0, 1, static_cast<std::uint8_t>(100 + i)));
  }
  ASSERT_TRUE(sb.wait_for_count(15))
      << "restarted sender's frames were dropped by the stale seq watermark";
  const auto msgs = sb.snapshot();
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(msgs[10 + i].body[0], static_cast<std::uint8_t>(100 + i));
  }
  const auto stats = b.peer_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].incarnation_resets, 1u);
  EXPECT_EQ(stats[0].dup_drops, 0u);
  a2.stop();
  b.stop();
}

TEST(TcpTransportTest, OverflowDropsOldestInsteadOfBlocking) {
  const auto ports = pick_ports(2);
  metrics::Metrics ma;
  CollectSink sa;
  auto opts = options_for(0, ports);
  opts.max_queue_msgs = 8;
  opts.max_batch_msgs = 4;
  TcpTransport a(opts, ma);
  a.connect(0, &sa);
  ASSERT_TRUE(a.start());

  // Peer 1 never listens. With a blocking cap this loop would park forever
  // at the 9th send; the drop-oldest policy must complete it, retaining at
  // most cap + one in-flight batch and counting the rest as drops.
  constexpr std::size_t kSends = 100;
  for (std::size_t i = 0; i < kSends; ++i) {
    a.send(make_msg(0, 1, static_cast<std::uint8_t>(i)));
  }
  const auto stats = a.peer_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_LE(stats[0].queued, opts.max_queue_msgs + opts.max_batch_msgs);
  EXPECT_GE(stats[0].overflow_drops,
            kSends - opts.max_queue_msgs - opts.max_batch_msgs);
  EXPECT_EQ(stats[0].queue_cap, opts.max_queue_msgs);
  a.stop();  // must return promptly: nothing can be parked in send()
}

TEST(TcpTransportTest, FlushTimesOutTowardDeadPeer) {
  const auto ports = pick_ports(2);
  metrics::Metrics ma;
  CollectSink sa;
  TcpTransport a(options_for(0, ports), ma);
  a.connect(0, &sa);
  ASSERT_TRUE(a.start());
  a.send(make_msg(0, 1, 1));
  EXPECT_FALSE(a.flush(50ms));
  a.stop();
}

TEST(TcpTransportTest, OversizedFrameDropsConnectionNotProcess) {
  const auto ports = pick_ports(2);
  metrics::Metrics ma, mb;
  CollectSink sa, sb;
  auto aopts = options_for(0, ports);
  TcpTransport a(aopts, ma);
  auto bopts = options_for(1, ports);
  bopts.max_frame_bytes = 64;  // receiver-side cap
  TcpTransport b(bopts, mb);
  a.connect(0, &sa);
  b.connect(1, &sb);
  ASSERT_TRUE(a.start());
  ASSERT_TRUE(b.start());

  Message big = make_msg(0, 1, 0xff);
  big.body.assign(1000, 0xee);
  big.payload_bytes = 1000;
  a.send(std::move(big));
  EXPECT_TRUE(a.flush(5s));  // writes fine; receiver rejects and disconnects
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(sb.count(), 0u);

  // The receiver is still alive: a small frame on a fresh connection works.
  a.send(make_msg(0, 1, 0x01));
  ASSERT_TRUE(sb.wait_for_count(1));
  EXPECT_EQ(sb.snapshot()[0].body[0], 0x01);
  a.stop();
  b.stop();
}

}  // namespace
}  // namespace ccpr::net
