#include "net/reliable_channel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/faulty_transport.hpp"
#include "net/sim_transport.hpp"

namespace ccpr::net {
namespace {

struct Collector final : IMessageSink {
  std::vector<Message> received;
  void deliver(Message msg) override { received.push_back(std::move(msg)); }
};

Message make(MsgKind kind, SiteId src, SiteId dst, std::uint8_t tag,
             std::uint32_t payload = 0) {
  Message m;
  m.kind = kind;
  m.src = src;
  m.dst = dst;
  m.body = {tag, 0x11, 0x22};
  m.payload_bytes = payload;
  return m;
}

struct Harness {
  sim::Scheduler sched;
  sim::UniformLatency lat{1'000, 30'000};
  util::Rng rng{5};
  metrics::Metrics metrics;
  SimTransport datagrams;
  FaultyTransport faulty;
  ReliableChannelTransport reliable;
  Collector sinks[3];

  explicit Harness(FaultyTransport::Options faults)
      : datagrams(3, sched, lat, rng, metrics),
        faulty(datagrams, faults),
        reliable(3, faulty, sched) {
    for (SiteId s = 0; s < 3; ++s) reliable.connect(s, &sinks[s]);
  }
};

TEST(ReliableChannelTest, LosslessPassThrough) {
  Harness h(FaultyTransport::Options{});
  for (std::uint8_t i = 0; i < 20; ++i) {
    h.reliable.send(make(MsgKind::kUpdate, 0, 1, i));
  }
  h.sched.run();
  ASSERT_EQ(h.sinks[1].received.size(), 20u);
  for (std::uint8_t i = 0; i < 20; ++i) {
    EXPECT_EQ(h.sinks[1].received[i].body[0], i);
    EXPECT_EQ(h.sinks[1].received[i].kind, MsgKind::kUpdate);
  }
  EXPECT_EQ(h.reliable.retransmissions(), 0u);
  EXPECT_EQ(h.reliable.unacked(), 0u);
}

TEST(ReliableChannelTest, PreservesAppKindAndPayloadSplit) {
  Harness h(FaultyTransport::Options{});
  h.reliable.send(make(MsgKind::kFetchResp, 2, 0, 7, /*payload=*/2));
  h.sched.run();
  ASSERT_EQ(h.sinks[0].received.size(), 1u);
  EXPECT_EQ(h.sinks[0].received[0].kind, MsgKind::kFetchResp);
  EXPECT_EQ(h.sinks[0].received[0].payload_bytes, 2u);
  EXPECT_EQ(h.sinks[0].received[0].body.size(), 3u);
  EXPECT_EQ(h.sinks[0].received[0].src, 2u);
}

TEST(ReliableChannelTest, RecoversFromHeavyLoss) {
  Harness h(FaultyTransport::Options{.drop_rate = 0.4, .seed = 9});
  for (std::uint8_t i = 0; i < 50; ++i) {
    h.reliable.send(make(MsgKind::kUpdate, 0, 2, i));
  }
  h.sched.run();
  ASSERT_EQ(h.sinks[2].received.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) {
    EXPECT_EQ(h.sinks[2].received[i].body[0], i);  // exactly-once, in order
  }
  EXPECT_GT(h.faulty.dropped(), 0u);
  EXPECT_GT(h.reliable.retransmissions(), 0u);
  EXPECT_EQ(h.reliable.unacked(), 0u);
}

TEST(ReliableChannelTest, DiscardsDuplicates) {
  Harness h(FaultyTransport::Options{.duplicate_rate = 0.5, .seed = 4});
  for (std::uint8_t i = 0; i < 30; ++i) {
    h.reliable.send(make(MsgKind::kUpdate, 1, 0, i));
  }
  h.sched.run();
  ASSERT_EQ(h.sinks[0].received.size(), 30u);
  EXPECT_GT(h.reliable.duplicates_discarded(), 0u);
}

TEST(ReliableChannelTest, LossAndDuplicationTogether) {
  Harness h(FaultyTransport::Options{
      .drop_rate = 0.3, .duplicate_rate = 0.3, .seed = 77});
  for (std::uint8_t i = 0; i < 40; ++i) {
    h.reliable.send(make(MsgKind::kUpdate, 0, 1, i));
    h.reliable.send(make(MsgKind::kUpdate, 1, 0, i));
  }
  h.sched.run();
  ASSERT_EQ(h.sinks[1].received.size(), 40u);
  ASSERT_EQ(h.sinks[0].received.size(), 40u);
  for (std::uint8_t i = 0; i < 40; ++i) {
    EXPECT_EQ(h.sinks[1].received[i].body[0], i);
    EXPECT_EQ(h.sinks[0].received[i].body[0], i);
  }
}

TEST(FaultyTransportTest, ZeroRatesAreTransparent) {
  sim::Scheduler sched;
  sim::ConstantLatency lat(10);
  util::Rng rng(1);
  metrics::Metrics metrics;
  SimTransport inner(2, sched, lat, rng, metrics);
  FaultyTransport faulty(inner, FaultyTransport::Options{});
  Collector c0, c1;
  faulty.connect(0, &c0);
  faulty.connect(1, &c1);
  for (int i = 0; i < 25; ++i) faulty.send(make(MsgKind::kUpdate, 0, 1, 1));
  sched.run();
  EXPECT_EQ(c1.received.size(), 25u);
  EXPECT_EQ(faulty.dropped(), 0u);
  EXPECT_EQ(faulty.duplicated(), 0u);
}

TEST(FaultyTransportTest, DropRateOneDropsEverything) {
  sim::Scheduler sched;
  sim::ConstantLatency lat(10);
  util::Rng rng(1);
  metrics::Metrics metrics;
  SimTransport inner(2, sched, lat, rng, metrics);
  FaultyTransport faulty(inner, FaultyTransport::Options{.drop_rate = 1.0});
  Collector c0, c1;
  faulty.connect(0, &c0);
  faulty.connect(1, &c1);
  for (int i = 0; i < 10; ++i) faulty.send(make(MsgKind::kUpdate, 0, 1, 1));
  sched.run();
  EXPECT_TRUE(c1.received.empty());
  EXPECT_EQ(faulty.dropped(), 10u);
}

}  // namespace
}  // namespace ccpr::net
