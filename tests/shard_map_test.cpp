// ShardMap + shard-envelope/session-token codec unit tests.
//
// The map is a cluster-wide wire contract: every site and every runtime
// must place a VarId on the same shard forever, so the mixer's output is
// pinned to golden values here — if this test fails, the change broke
// cross-version (and cross-site) compatibility, not just a hash choice.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "causal/shard_map.hpp"
#include "net/message.hpp"
#include "test_support.hpp"
#include "workload/workload.hpp"

namespace ccpr {
namespace {

TEST(ShardMapTest, MixMatchesGoldenSplitmix64Values) {
  EXPECT_EQ(causal::ShardMap::mix(0), 0xe220a8397b1dcdafull);
  EXPECT_EQ(causal::ShardMap::mix(1), 0x910a2dec89025cc1ull);
  EXPECT_EQ(causal::ShardMap::mix(2), 0x975835de1c9756ceull);
  EXPECT_EQ(causal::ShardMap::mix(7), 0x63cbe1e459320dd7ull);
  EXPECT_EQ(causal::ShardMap::mix(1000), 0x3c1eba8b4dccc148ull);
  EXPECT_EQ(causal::ShardMap::mix(123456789), 0x223c74d93deb7679ull);
}

TEST(ShardMapTest, GoldenShardAssignments) {
  const causal::ShardMap m4(4);
  EXPECT_EQ(m4.shard_of(0), 3u);
  EXPECT_EQ(m4.shard_of(1), 1u);
  EXPECT_EQ(m4.shard_of(2), 2u);
  EXPECT_EQ(m4.shard_of(1000), 0u);
  const causal::ShardMap m8(8);
  EXPECT_EQ(m8.shard_of(0), 7u);
  EXPECT_EQ(m8.shard_of(2), 6u);
  EXPECT_EQ(m8.shard_of(1000), 0u);
}

TEST(ShardMapTest, SingleShardIsIdentityZero) {
  const causal::ShardMap m(1);
  for (causal::VarId x = 0; x < 1000; ++x) EXPECT_EQ(m.shard_of(x), 0u);
  // Shard count 0 is coerced to 1 rather than dividing by zero.
  const causal::ShardMap z(0);
  EXPECT_EQ(z.shards(), 1u);
  EXPECT_EQ(z.shard_of(42), 0u);
}

TEST(ShardMapTest, AssignmentsAreStableAndInRange) {
  const causal::ShardMap m(5);
  for (causal::VarId x = 0; x < 2000; ++x) {
    const auto k = m.shard_of(x);
    EXPECT_LT(k, 5u);
    EXPECT_EQ(k, m.shard_of(x)) << "shard_of must be a pure function";
  }
}

TEST(ShardMapTest, DistributionIsRoughlyUniform) {
  // 10k sequential VarIds over 4 shards: every shard should land within
  // 20% of the fair share. (The mixer is splitmix64's finalizer; a gross
  // imbalance means the hash was changed or broken.)
  const causal::ShardMap m(4);
  std::vector<std::uint32_t> counts(4, 0);
  const std::uint32_t n = 10000;
  for (causal::VarId x = 0; x < n; ++x) counts[m.shard_of(x)]++;
  for (std::uint32_t k = 0; k < 4; ++k) {
    EXPECT_GT(counts[k], n / 4 * 8 / 10) << "shard " << k;
    EXPECT_LT(counts[k], n / 4 * 12 / 10) << "shard " << k;
  }
}

net::Message make_inner() {
  net::Message inner;
  inner.kind = net::MsgKind::kUpdate;
  inner.src = 1;
  inner.dst = 2;
  inner.chan_epoch = 7;
  inner.chan_seq = 42;
  inner.payload_bytes = 11;
  inner.body = {0xde, 0xad, 0xbe, 0xef};
  return inner;
}

TEST(ShardEnvelopeTest, RoundTripPreservesEverything) {
  std::vector<causal::ShardToken> tokens;
  tokens.push_back({0, {1, 2, 3}});
  tokens.push_back({2, {9}});
  const auto inner = make_inner();
  const auto env = causal::wrap_shard_envelope(1, tokens, inner);

  EXPECT_EQ(env.kind, net::MsgKind::kShardEnvelope);
  EXPECT_EQ(env.src, inner.src);
  EXPECT_EQ(env.dst, inner.dst);
  EXPECT_EQ(env.chan_epoch, inner.chan_epoch);
  EXPECT_EQ(env.chan_seq, inner.chan_seq);
  EXPECT_EQ(env.payload_bytes, inner.payload_bytes);
  EXPECT_EQ(causal::shard_envelope_inner_kind(env.body),
            static_cast<std::uint8_t>(net::MsgKind::kUpdate));

  const auto dec = causal::unwrap_shard_envelope(env);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->shard, 1u);
  ASSERT_EQ(dec->tokens.size(), 2u);
  EXPECT_EQ(dec->tokens[0].shard, 0u);
  EXPECT_EQ(dec->tokens[0].token, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(dec->tokens[1].shard, 2u);
  EXPECT_EQ(dec->tokens[1].token, (std::vector<std::uint8_t>{9}));
  EXPECT_EQ(dec->inner.kind, net::MsgKind::kUpdate);
  EXPECT_EQ(dec->inner.src, inner.src);
  EXPECT_EQ(dec->inner.dst, inner.dst);
  EXPECT_EQ(dec->inner.chan_epoch, inner.chan_epoch);
  EXPECT_EQ(dec->inner.chan_seq, inner.chan_seq);
  EXPECT_EQ(dec->inner.payload_bytes, inner.payload_bytes);
  EXPECT_EQ(dec->inner.body, inner.body);
}

TEST(ShardEnvelopeTest, ZeroTokensAndEmptyBodyRoundTrip) {
  net::Message inner;
  inner.kind = net::MsgKind::kFetchReq;
  inner.src = 0;
  inner.dst = 1;
  const auto env = causal::wrap_shard_envelope(3, {}, inner);
  const auto dec = causal::unwrap_shard_envelope(env);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->shard, 3u);
  EXPECT_TRUE(dec->tokens.empty());
  EXPECT_EQ(dec->inner.kind, net::MsgKind::kFetchReq);
  EXPECT_TRUE(dec->inner.body.empty());
}

TEST(ShardEnvelopeTest, MalformedBodiesAreRejected) {
  const auto env = causal::wrap_shard_envelope(1, {{0, {1, 2}}}, make_inner());

  // Wrong outer kind.
  net::Message notenv = env;
  notenv.kind = net::MsgKind::kUpdate;
  EXPECT_FALSE(causal::unwrap_shard_envelope(notenv).has_value());

  // Empty body.
  net::Message empty = env;
  empty.body.clear();
  EXPECT_FALSE(causal::unwrap_shard_envelope(empty).has_value());

  // Every strict prefix of the header+tokens region must fail cleanly
  // (truncated varints, truncated token bytes). The inner body itself may
  // legitimately be empty, so stop before the full frame.
  for (std::size_t len = 0; len + 4 < env.body.size(); ++len) {
    net::Message cut = env;
    cut.body.resize(len);
    EXPECT_FALSE(causal::unwrap_shard_envelope(cut).has_value())
        << "prefix length " << len;
  }
}

TEST(ShardTokenCodecTest, SingleShardIsPassthrough) {
  const std::vector<std::uint8_t> raw = {5, 6, 7, 8};
  EXPECT_EQ(causal::combine_shard_tokens({raw}), raw);
  const auto split = causal::split_shard_tokens(raw, 1);
  ASSERT_TRUE(split.has_value());
  ASSERT_EQ(split->size(), 1u);
  EXPECT_EQ((*split)[0], raw);
}

TEST(ShardTokenCodecTest, MultiShardRoundTrip) {
  const std::vector<std::vector<std::uint8_t>> per_shard = {
      {1, 2, 3}, {}, {42}};
  const auto combined = causal::combine_shard_tokens(per_shard);
  const auto split = causal::split_shard_tokens(combined, 3);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(*split, per_shard);
}

TEST(ShardTokenCodecTest, CountMismatchAndGarbageAreRejected) {
  const auto combined =
      causal::combine_shard_tokens({{1, 2}, {3, 4}, {5, 6}, {7, 8}});
  EXPECT_FALSE(causal::split_shard_tokens(combined, 2).has_value());
  EXPECT_FALSE(causal::split_shard_tokens(combined, 8).has_value());
  // Truncated combined frames must fail, not crash or mis-split.
  for (std::size_t len = 0; len < combined.size(); ++len) {
    std::vector<std::uint8_t> cut(combined.begin(),
                                  combined.begin() + static_cast<long>(len));
    EXPECT_FALSE(causal::split_shard_tokens(cut, 4).has_value())
        << "prefix length " << len;
  }
  // Trailing garbage after the declared tokens is also malformed.
  auto padded = combined;
  padded.push_back(0xff);
  EXPECT_FALSE(causal::split_shard_tokens(padded, 4).has_value());
}

// ---- ShardGroup on the sim runtime ----
//
// The same generated workload runs on a sharded and an unsharded cluster;
// the checker verifies causal memory either way. This is the sim-runtime
// counterpart of the tcp_stress / nemesis engine-shards parameterization.

causal::Program shard_group_program(const causal::ReplicaMap& rmap) {
  workload::WorkloadSpec spec;
  spec.ops_per_site = 120;
  spec.write_rate = 0.45;
  spec.value_bytes = 24;
  spec.seed = 99;
  return workload::generate_program(spec, rmap);
}

class ShardGroupSimTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ShardGroupSimTest, WorkloadIsCausallyConsistent) {
  const auto rmap = causal::ReplicaMap::even(4, 12, 2);
  causal::SimCluster::Options opts;
  opts.latency = std::make_unique<sim::UniformLatency>(5'000, 40'000);
  opts.protocol.engine_shards = GetParam();
  causal::SimCluster cluster(causal::Algorithm::kOptTrack, rmap,
                             std::move(opts));
  cluster.run_program(shard_group_program(rmap));
  EXPECT_EQ(cluster.pending_updates(), 0u);
  ccpr::testing::expect_causal(cluster);
}

INSTANTIATE_TEST_SUITE_P(EngineShards, ShardGroupSimTest,
                         ::testing::Values(1u, 4u),
                         [](const ::testing::TestParamInfo<std::uint32_t>& i) {
                           return "shards" + std::to_string(i.param);
                         });

TEST(ShardGroupSimTest, SingleShardHistoryMatchesUnshardedRun) {
  // engine_shards == 1 must be a strict passthrough: same protocol
  // decisions, same wire traffic, same recorded history as the default
  // (unsharded) factory path, event for event.
  const auto rmap = causal::ReplicaMap::even(3, 9, 2);
  const auto program = shard_group_program(rmap);
  auto run = [&](std::uint32_t shards) {
    causal::SimCluster::Options opts;
    opts.latency = std::make_unique<sim::ConstantLatency>(10'000);
    opts.protocol.engine_shards = shards;
    causal::SimCluster cluster(causal::Algorithm::kOptTrack, rmap,
                               std::move(opts));
    cluster.run_program(program);
    std::vector<std::tuple<causal::SiteId, std::uint64_t, std::uint64_t>> out;
    for (const auto& a : cluster.history().applies()) {
      out.emplace_back(a.site, a.write.writer, a.write.seq);
    }
    return out;
  };
  const auto unsharded = run(0);  // <=1 both take the make_single path
  const auto sharded1 = run(1);
  EXPECT_EQ(unsharded, sharded1);
  ASSERT_FALSE(sharded1.empty());
}

TEST(ShardGroupSimTest, CrossShardSessionOrderHolds) {
  // A write on shard A followed by a causally-dependent write on shard B
  // must reach a remote site in that order even though the shards'
  // protocol instances are independent: the kShardEnvelope coverage token
  // on B's update parks it until A's update has been applied.
  const auto rmap = causal::ReplicaMap::full(3, 8);
  const causal::ShardMap map(4);
  // Pick two vars on different shards.
  causal::VarId a = 0, b = 1;
  while (map.shard_of(b) == map.shard_of(a)) ++b;
  causal::SimCluster::Options opts;
  opts.latency = std::make_unique<sim::ConstantLatency>(10'000);
  opts.protocol.engine_shards = 4;
  causal::SimCluster cluster(causal::Algorithm::kOptTrack, rmap,
                             std::move(opts));
  cluster.write(0, a, "first");
  cluster.write(0, b, "second");
  cluster.run();
  EXPECT_EQ(cluster.site(2).peek(a).data, "first");
  EXPECT_EQ(cluster.site(2).peek(b).data, "second");
  ccpr::testing::expect_causal(cluster);
}

}  // namespace
}  // namespace ccpr
