// §V availability: "If a non-local read does not respond in a timeout
// period, then a secondary process is contacted."
#include <gtest/gtest.h>

#include <memory>

#include "checker/causal_checker.hpp"
#include "test_support.hpp"

namespace ccpr::causal {
namespace {

// Var 0 replicated at {1, 2}; reader site 0 prefers site 1 (ring-nearest).
ReplicaMap failover_rmap() { return ReplicaMap::custom(3, {{1, 2}}); }

SimCluster::Options failover_options(sim::SimTime timeout_us) {
  auto opts = ccpr::testing::constant_latency(2'000);
  opts.protocol.fetch_timeout_us = timeout_us;
  return opts;
}

TEST(FetchFailoverTest, RankedTargetsCycleThroughReplicas) {
  const auto rmap = failover_rmap();
  EXPECT_EQ(rmap.fetch_target(0, 0), 1u);
  EXPECT_EQ(rmap.fetch_target_ranked(0, 0, 0), 1u);
  EXPECT_EQ(rmap.fetch_target_ranked(0, 0, 1), 2u);
  EXPECT_EQ(rmap.fetch_target_ranked(0, 0, 2), 1u);  // wraps
}

TEST(FetchFailoverTest, SecondaryAnswersWhenPrimaryIsDown) {
  SimCluster c(Algorithm::kOptTrack, failover_rmap(),
               failover_options(50'000));
  c.write(2, 0, "survivor-value");
  c.run();  // both replicas hold it
  c.crash_site(1);  // the pre-designated target dies

  const Value v = c.read(0, 0);
  EXPECT_EQ(v.data, "survivor-value");
  const auto m = c.metrics();
  EXPECT_EQ(m.fetch_retries, 1u);
  EXPECT_EQ(m.fetch_req_msgs, 2u);  // primary (lost) + secondary
  // Simulated time advanced past the timeout.
  EXPECT_GE(c.scheduler().now(), 50'000);
}

TEST(FetchFailoverTest, NoRetriesWhenPrimaryHealthy) {
  SimCluster c(Algorithm::kOptTrack, failover_rmap(),
               failover_options(50'000));
  c.write(1, 0, "value");
  c.run();
  EXPECT_EQ(c.read(0, 0).data, "value");
  const auto m = c.metrics();
  EXPECT_EQ(m.fetch_retries, 0u);
  EXPECT_EQ(m.fetch_req_msgs, 1u);
}

TEST(FetchFailoverTest, LateResponseAfterFailoverIsIgnored) {
  // Primary is merely SLOW (80ms one-way), not dead: the timeout (20ms)
  // fails over to the secondary, whose answer completes the read; the
  // primary's late response must be discarded without effect.
  std::vector<sim::SimTime> base{0,      80'000, 2'000,   //
                                 80'000, 0,      2'000,   //
                                 2'000,  2'000,  0};
  auto opts = ccpr::testing::matrix_latency(3, std::move(base));
  opts.protocol.fetch_timeout_us = 20'000;
  SimCluster c(Algorithm::kOptTrack, failover_rmap(), std::move(opts));
  c.write(2, 0, "v");
  c.run();
  const Value v = c.read(0, 0);
  EXPECT_EQ(v.data, "v");
  c.run();  // drain the straggler response: must not crash or double-fire
  const auto m = c.metrics();
  EXPECT_EQ(m.fetch_retries, 1u);
  EXPECT_EQ(m.reads, 1u);
  EXPECT_EQ(m.read_latency_us.count(), 1u);  // completed exactly once
}

TEST(FetchFailoverTest, TimeoutDisabledMeansNoRetry) {
  SimCluster c(Algorithm::kOptTrack, failover_rmap(),
               failover_options(0));
  c.write(1, 0, "v");
  c.run();
  EXPECT_EQ(c.read(0, 0).data, "v");
  EXPECT_EQ(c.metrics().fetch_retries, 0u);
}

TEST(FetchFailoverTest, HistoryStaysCausalUnderFailover) {
  SimCluster c(Algorithm::kOptTrack, failover_rmap(),
               failover_options(30'000));
  c.write(2, 0, "a");
  c.run();
  c.crash_site(1);
  ASSERT_EQ(c.read(0, 0).data, "a");
  c.write(2, 0, "b");
  c.run();
  ASSERT_EQ(c.read(0, 0).data, "b");
  checker::CheckOptions opts;
  // Site 1 is crashed: updates destined to it are legitimately lost.
  opts.require_complete_delivery = false;
  const auto result =
      checker::check_causal_consistency(c.history(), c.replica_map(), opts);
  EXPECT_TRUE(result.ok);
  for (const auto& v : result.violations) ADD_FAILURE() << v;
}

}  // namespace
}  // namespace ccpr::causal
