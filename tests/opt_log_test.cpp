#include "causal/opt_log.hpp"

#include <gtest/gtest.h>

namespace ccpr::causal {
namespace {

LogEntry entry(SiteId sender, std::uint64_t clock,
               std::initializer_list<SiteId> dests) {
  return LogEntry{sender, clock, DestSet(dests)};
}

TEST(PurgeLogTest, KeepsNewestEmptyRecordPerSender) {
  // Fig. 2 of the paper: an empty-Dests record must survive while it is the
  // newest record from its sender (it is needed to clean other sites' logs).
  Log log{entry(1, 5, {})};
  purge_log(log);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].clock, 5u);
}

TEST(PurgeLogTest, DropsEmptyRecordWithNewerSameSender) {
  Log log{entry(1, 5, {}), entry(1, 7, {2})};
  purge_log(log);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].clock, 7u);
}

TEST(PurgeLogTest, KeepsNonEmptyOldRecords) {
  Log log{entry(1, 5, {3}), entry(1, 7, {2})};
  purge_log(log);
  EXPECT_EQ(log.size(), 2u);
}

TEST(PurgeLogTest, IndependentSenders) {
  Log log{entry(1, 5, {}), entry(2, 9, {0})};
  purge_log(log);
  EXPECT_EQ(log.size(), 2u);  // sender 2's newer record does not purge 1's
}

TEST(PurgeLogTest, NewerEmptyPurgesOlderEmpty) {
  Log log{entry(1, 5, {}), entry(1, 8, {})};
  purge_log(log);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].clock, 8u);
}

TEST(MergeLogsTest, DisjointSendersConcatenate) {
  Log local{entry(1, 5, {2})};
  Log incoming{entry(2, 3, {0})};
  merge_logs(local, incoming);
  EXPECT_EQ(local.size(), 2u);
}

TEST(MergeLogsTest, ConservativeKeepsOlderObligations) {
  // The older record still carries an unproven obligation ({2}); the sound
  // policy must not drop it just because a newer same-sender record exists.
  Log local{entry(1, 5, {2})};
  Log incoming{entry(1, 9, {0})};
  merge_logs(local, incoming);
  ASSERT_EQ(local.size(), 2u);
}

TEST(MergeLogsTest, ConservativeDropsOlderEmptyRecords) {
  Log local{entry(1, 5, {})};
  Log incoming{entry(1, 9, {0})};
  merge_logs(local, incoming);
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local[0].clock, 9u);
}

TEST(MergeLogsTest, AggressiveNewerIncomingDeletesOlderLocal) {
  Log local{entry(1, 5, {2})};
  Log incoming{entry(1, 9, {0})};
  merge_logs(local, incoming, MergePolicy::kPaperAggressive);
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local[0].clock, 9u);
}

TEST(MergeLogsTest, AggressiveNewerLocalDeletesOlderIncoming) {
  Log local{entry(1, 9, {2})};
  Log incoming{entry(1, 5, {0})};
  merge_logs(local, incoming, MergePolicy::kPaperAggressive);
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local[0].clock, 9u);
  EXPECT_TRUE(local[0].dests.contains(2));
}

TEST(MergeLogsTest, EqualClocksIntersectDests) {
  // Each side may have independently pruned different destinations; the
  // remaining obligation is the intersection.
  Log local{entry(1, 5, {2, 3, 4})};
  Log incoming{entry(1, 5, {3, 4, 6})};
  merge_logs(local, incoming);
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local[0].dests, (DestSet{3, 4}));
}

TEST(MergeLogsTest, AggressivePairwiseMarkingAcrossMultipleRecords) {
  // local {<z,5>, <z,7>}, incoming {<z,6>, <z,9>} -> only <z,9> survives
  // under the paper's rule.
  Log local{entry(1, 5, {0}), entry(1, 7, {2})};
  Log incoming{entry(1, 6, {3}), entry(1, 9, {4})};
  merge_logs(local, incoming, MergePolicy::kPaperAggressive);
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local[0].clock, 9u);
}

TEST(MergeLogsTest, MultipleRecordsSameSenderSurviveWithoutCounterpart) {
  // No incoming records from sender 1: both local records stay.
  Log local{entry(1, 5, {0}), entry(1, 7, {2})};
  Log incoming{entry(2, 1, {0})};
  merge_logs(local, incoming);
  EXPECT_EQ(local.size(), 3u);
}

TEST(MergeLogsTest, EmptyIncomingIsNoop) {
  Log local{entry(1, 5, {0})};
  merge_logs(local, Log{});
  EXPECT_EQ(local.size(), 1u);
}

TEST(MergeLogsTest, EmptyLocalTakesIncoming) {
  Log local;
  merge_logs(local, Log{entry(3, 2, {1})});
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local[0].sender, 3u);
}

TEST(LogWireTest, EntryRoundTrip) {
  net::Encoder enc;
  encode_entry(enc, entry(7, 123456, {1, 5, 30}));
  net::Decoder dec(enc.buffer());
  const LogEntry e = decode_entry(dec);
  EXPECT_TRUE(dec.ok());
  EXPECT_EQ(e.sender, 7u);
  EXPECT_EQ(e.clock, 123456u);
  EXPECT_EQ(e.dests, (DestSet{1, 5, 30}));
}

TEST(LogWireTest, LogRoundTrip) {
  Log log{entry(0, 1, {}), entry(3, 99, {2, 4}), entry(1, 7, {0})};
  net::Encoder enc;
  encode_log(enc, log);
  net::Decoder dec(enc.buffer());
  const Log out = decode_log(dec);
  EXPECT_TRUE(dec.ok());
  EXPECT_EQ(out, log);
}

TEST(LogWireTest, EmptyLogRoundTrip) {
  net::Encoder enc;
  encode_log(enc, Log{});
  net::Decoder dec(enc.buffer());
  EXPECT_TRUE(decode_log(dec).empty());
  EXPECT_TRUE(dec.ok());
}

TEST(LogByteSizeTest, GrowsWithEntriesAndDests) {
  Log small{entry(1, 5, {})};
  Log bigger{entry(1, 5, {2, 3, 4})};
  EXPECT_GT(log_byte_size(bigger), log_byte_size(small));
  EXPECT_EQ(log_byte_size(Log{}), 0u);
}

}  // namespace
}  // namespace ccpr::causal
