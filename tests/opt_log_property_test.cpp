// Property tests over randomized Opt-Track log histories: whatever sequence
// of merges, prunes and purges occurs, the structural invariants of the log
// must hold.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "causal/opt_log.hpp"
#include "util/rng.hpp"

namespace ccpr::causal {
namespace {

Log random_log(util::Rng& rng, std::uint32_t n_senders,
               std::uint64_t max_clock) {
  Log log;
  const std::uint64_t entries = rng.below(8);
  std::set<std::pair<SiteId, std::uint64_t>> seen;
  for (std::uint64_t i = 0; i < entries; ++i) {
    LogEntry e;
    e.sender = static_cast<SiteId>(rng.below(n_senders));
    e.clock = 1 + rng.below(max_clock);
    if (!seen.insert({e.sender, e.clock}).second) continue;
    const std::uint64_t dests = rng.below(4);
    for (std::uint64_t d = 0; d < dests; ++d) {
      e.dests.insert(static_cast<SiteId>(rng.below(n_senders)));
    }
    log.push_back(std::move(e));
  }
  return log;
}

void expect_no_duplicate_ids(const Log& log) {
  std::set<std::pair<SiteId, std::uint64_t>> seen;
  for (const LogEntry& e : log) {
    EXPECT_TRUE(seen.insert({e.sender, e.clock}).second)
        << "duplicate record <" << e.sender << "," << e.clock << ">";
  }
}

void expect_purged(const Log& log) {
  std::map<SiteId, std::uint64_t> newest;
  for (const LogEntry& e : log) {
    auto [it, inserted] = newest.try_emplace(e.sender, e.clock);
    if (!inserted && e.clock > it->second) it->second = e.clock;
  }
  for (const LogEntry& e : log) {
    EXPECT_FALSE(e.dests.empty() && e.clock < newest[e.sender])
        << "stale empty record survived purge";
  }
}

class MergePolicyProperty : public ::testing::TestWithParam<MergePolicy> {};

TEST_P(MergePolicyProperty, MergeNeverDuplicatesRecords) {
  util::Rng rng(0xabc);
  for (int round = 0; round < 500; ++round) {
    Log local = random_log(rng, 6, 20);
    Log incoming = random_log(rng, 6, 20);
    merge_logs(local, std::move(incoming), GetParam());
    expect_no_duplicate_ids(local);
  }
}

TEST_P(MergePolicyProperty, MergeWithSelfKeepsRecordsVerbatim) {
  util::Rng rng(0xdef);
  for (int round = 0; round < 300; ++round) {
    const Log before = random_log(rng, 5, 15);
    Log log = before;
    Log copy = before;
    merge_logs(log, std::move(copy), GetParam());
    purge_log(log);
    expect_no_duplicate_ids(log);
    expect_purged(log);
    // Every survivor must be an original record with identical dests
    // (intersection with itself changes nothing).
    for (const LogEntry& e : log) {
      bool matched = false;
      for (const LogEntry& b : before) {
        if (b.sender == e.sender && b.clock == e.clock) {
          EXPECT_EQ(b.dests, e.dests);
          matched = true;
        }
      }
      EXPECT_TRUE(matched);
    }
  }
}

TEST_P(MergePolicyProperty, EqualClockRecordsOnlyShrinkDests) {
  util::Rng rng(0x123);
  for (int round = 0; round < 300; ++round) {
    Log local = random_log(rng, 4, 8);
    Log incoming = random_log(rng, 4, 8);
    // Remember dests of records present in BOTH logs.
    std::map<std::pair<SiteId, std::uint64_t>, DestSet> both;
    for (const LogEntry& l : local) {
      for (const LogEntry& o : incoming) {
        if (l.sender == o.sender && l.clock == o.clock) {
          DestSet inter = l.dests;
          inter.intersect(o.dests);
          both[{l.sender, l.clock}] = inter;
        }
      }
    }
    merge_logs(local, std::move(incoming), GetParam());
    for (const LogEntry& e : local) {
      const auto it = both.find({e.sender, e.clock});
      if (it != both.end()) {
        EXPECT_EQ(e.dests, it->second)
            << "equal-clock merge must intersect destination lists";
      }
    }
  }
}

TEST_P(MergePolicyProperty, PurgeIsIdempotent) {
  util::Rng rng(0x456);
  for (int round = 0; round < 300; ++round) {
    Log log = random_log(rng, 5, 10);
    purge_log(log);
    Log once = log;
    purge_log(log);
    EXPECT_EQ(log, once);
    expect_purged(log);
  }
}

TEST(MergeConservativeProperty, NonEmptyObligationsSurviveAnyMerge) {
  // The soundness core: a record with destinations can only lose them via
  // equal-clock intersection, never by wholesale deletion.
  util::Rng rng(0x789);
  for (int round = 0; round < 500; ++round) {
    Log local = random_log(rng, 5, 12);
    Log incoming = random_log(rng, 5, 12);
    // For each local record, the merge may only drop it if the incoming log
    // carries the same (sender, clock) — deletion-by-seniority requires the
    // record's dests to already be empty.
    std::map<std::pair<SiteId, std::uint64_t>, bool> incoming_has;
    for (const LogEntry& o : incoming) {
      incoming_has[{o.sender, o.clock}] = true;
    }
    const Log before = local;
    merge_logs(local, std::move(incoming));
    for (const LogEntry& b : before) {
      if (b.dests.empty()) continue;
      bool found = false;
      for (const LogEntry& a : local) {
        if (a.sender == b.sender && a.clock == b.clock) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found || incoming_has.count({b.sender, b.clock}))
          << "non-empty obligation <" << b.sender << "," << b.clock
          << "> vanished without an equal-clock counterpart";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MergePolicyProperty,
    ::testing::Values(MergePolicy::kConservative,
                      MergePolicy::kPaperAggressive),
    [](const ::testing::TestParamInfo<MergePolicy>& param_info) {
      return param_info.param == MergePolicy::kConservative ? "conservative"
                                                      : "aggressive";
    });

}  // namespace
}  // namespace ccpr::causal
