// TCP frame codec tests: roundtrip fidelity plus rejection of every class of
// malformed input the reader can encounter on a real socket.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace ccpr::net {
namespace {

Message make_msg(MsgKind kind, SiteId src, SiteId dst,
                 std::vector<std::uint8_t> body, std::uint32_t payload) {
  Message m;
  m.kind = kind;
  m.src = src;
  m.dst = dst;
  m.body = std::move(body);
  m.payload_bytes = payload;
  return m;
}

TEST(FrameTest, RoundTripAllKinds) {
  for (const MsgKind kind :
       {MsgKind::kUpdate, MsgKind::kFetchReq, MsgKind::kFetchResp,
        MsgKind::kCatchupReq, MsgKind::kCatchupResp}) {
    Message msg = make_msg(kind, 3, 7, {0xde, 0xad, 0xbe, 0xef, 0x01}, 2);
    msg.chan_epoch = 0x1234567;
    msg.chan_seq = 99;
    const auto wire = encode_frame(msg, 0xabcd, 42);

    const auto size =
        decode_frame_size(wire.data(), kFrameLenBytes, kDefaultMaxFrameBytes);
    ASSERT_TRUE(size.has_value());
    EXPECT_EQ(*size, wire.size() - kFrameLenBytes);

    const auto frame =
        decode_frame_body(wire.data() + kFrameLenBytes, *size);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->msg.kind, kind);
    EXPECT_EQ(frame->msg.src, 3u);
    EXPECT_EQ(frame->msg.dst, 7u);
    EXPECT_EQ(frame->msg.body, msg.body);
    EXPECT_EQ(frame->msg.payload_bytes, 2u);
    EXPECT_EQ(frame->incarnation, 0xabcdu);
    EXPECT_EQ(frame->seq, 42u);
    EXPECT_EQ(frame->msg.chan_epoch, 0x1234567u);
    EXPECT_EQ(frame->msg.chan_seq, 99u);
  }
}

TEST(FrameTest, RoundTripEmptyBody) {
  const Message msg = make_msg(MsgKind::kFetchReq, 0, 1, {}, 0);
  const auto wire = encode_frame(msg, 1, 1);
  const auto frame = decode_frame_body(wire.data() + kFrameLenBytes,
                                       wire.size() - kFrameLenBytes);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->msg.body.empty());
  EXPECT_EQ(frame->seq, 1u);
}

TEST(FrameTest, LargeSeqIncarnationAndSiteIds) {
  const Message msg = make_msg(MsgKind::kUpdate, 0xfffffffeu, 0x12345678u,
                               std::vector<std::uint8_t>(1000, 0x5a), 1000);
  const auto wire =
      encode_frame(msg, 0xdeadbeefcafef00dULL, 0xffffffffffffffffULL);
  const auto frame = decode_frame_body(wire.data() + kFrameLenBytes,
                                       wire.size() - kFrameLenBytes);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->msg.src, 0xfffffffeu);
  EXPECT_EQ(frame->msg.dst, 0x12345678u);
  EXPECT_EQ(frame->incarnation, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(frame->seq, 0xffffffffffffffffULL);
}

TEST(FrameTest, SizeRejectsZero) {
  const std::uint8_t zero[kFrameLenBytes] = {0, 0, 0, 0};
  EXPECT_FALSE(
      decode_frame_size(zero, sizeof zero, kDefaultMaxFrameBytes).has_value());
}

TEST(FrameTest, SizeRejectsOversized) {
  // 1025 little-endian with a 1024-byte cap.
  const std::uint8_t big[kFrameLenBytes] = {0x01, 0x04, 0, 0};
  EXPECT_FALSE(decode_frame_size(big, sizeof big, 1024).has_value());
  const std::uint8_t fits[kFrameLenBytes] = {0x00, 0x04, 0, 0};
  EXPECT_TRUE(decode_frame_size(fits, sizeof fits, 1024).has_value());
}

TEST(FrameTest, SizeRejectsShortPrefix) {
  const std::uint8_t partial[2] = {0x10, 0x00};
  EXPECT_FALSE(
      decode_frame_size(partial, sizeof partial, kDefaultMaxFrameBytes)
          .has_value());
}

TEST(FrameTest, BodyRejectsTruncation) {
  const Message msg =
      make_msg(MsgKind::kUpdate, 1, 2, {1, 2, 3, 4, 5, 6, 7, 8}, 4);
  const auto wire = encode_frame(msg, 6, 9);
  const std::uint8_t* body = wire.data() + kFrameLenBytes;
  const std::size_t body_len = wire.size() - kFrameLenBytes;
  // Every strict prefix of a valid frame body must be rejected.
  for (std::size_t cut = 0; cut < body_len; ++cut) {
    EXPECT_FALSE(decode_frame_body(body, cut).has_value())
        << "prefix of length " << cut << " decoded";
  }
}

TEST(FrameTest, BodyRejectsTrailingGarbage) {
  const Message msg = make_msg(MsgKind::kUpdate, 1, 2, {1, 2, 3}, 0);
  auto wire = encode_frame(msg, 6, 5);
  wire.push_back(0x00);
  EXPECT_FALSE(decode_frame_body(wire.data() + kFrameLenBytes,
                                 wire.size() - kFrameLenBytes)
                   .has_value());
}

TEST(FrameTest, BodyRejectsUnknownKind) {
  const Message msg = make_msg(MsgKind::kUpdate, 1, 2, {1, 2, 3}, 0);
  auto wire = encode_frame(msg, 6, 5);
  wire[kFrameLenBytes] = 0x7f;  // kind byte
  EXPECT_FALSE(decode_frame_body(wire.data() + kFrameLenBytes,
                                 wire.size() - kFrameLenBytes)
                   .has_value());
  wire[kFrameLenBytes] = 0x00;
  EXPECT_FALSE(decode_frame_body(wire.data() + kFrameLenBytes,
                                 wire.size() - kFrameLenBytes)
                   .has_value());
}

TEST(FrameTest, BodyRejectsPayloadLargerThanBody) {
  const Message msg = make_msg(MsgKind::kUpdate, 1, 2, {1, 2, 3}, 3);
  auto wire = encode_frame(msg, 6, 5);
  // Locate the payload_bytes varint: kind(1) + src(1) + dst(1) +
  // incarnation(1) + seq(1) + chan_epoch(1) + chan_seq(1) for these small
  // values; bump it beyond body_len.
  wire[kFrameLenBytes + 7] = 0x04;
  EXPECT_FALSE(decode_frame_body(wire.data() + kFrameLenBytes,
                                 wire.size() - kFrameLenBytes)
                   .has_value());
}

TEST(FrameTest, EncodedPrefixMatchesBodyLength) {
  const Message msg =
      make_msg(MsgKind::kFetchResp, 9, 4, std::vector<std::uint8_t>(300, 7),
               128);
  const auto wire = encode_frame(msg, 88, 77);
  std::uint32_t declared = 0;
  std::memcpy(&declared, wire.data(), kFrameLenBytes);
  // Encoder writes little-endian; this test assumes a little-endian host
  // like every other wire test in the suite.
  EXPECT_EQ(declared, wire.size() - kFrameLenBytes);
}

}  // namespace
}  // namespace ccpr::net
