// Stress test for the single-writer engine and the batched TCP path: three
// in-process SiteServers (so TSan can observe every thread), hammered by
// many parallel client sessions doing mixed put/get/snapshot plus the
// occasional migration, while three *recorded* sessions run a causal
// workload whose history the offline checker verifies afterwards.
//
// Variable split keeps the recorded history closed: recorded sessions touch
// vars [0, krecordedVars) only, hammer sessions touch the rest, so recorded
// reads can never observe a write the recorder did not log.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "checker/causal_checker.hpp"
#include "checker/recorder.hpp"
#include "client/client.hpp"
#include "net/socket.hpp"
#include "server/cluster_config.hpp"
#include "server/site_server.hpp"
#include "util/rng.hpp"

namespace ccpr {
namespace {

using namespace std::chrono_literals;

constexpr std::uint32_t kSites = 3;
constexpr std::uint32_t kVars = 12;
constexpr causal::VarId kRecordedVars = 6;  // [0,6) recorded, [6,12) hammer

std::vector<std::uint16_t> pick_ports(std::size_t n) {
  std::vector<net::Socket> held;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint16_t port = 0;
    held.push_back(net::tcp_listen("127.0.0.1", 0, &port));
    EXPECT_TRUE(held.back().valid());
    ports.push_back(port);
  }
  return ports;
}

server::ClusterConfig stress_config() {
  const auto ports = pick_ports(2 * kSites);
  auto cfg = server::ClusterConfig::loopback(kSites, kVars, 2, 0);
  for (std::uint32_t s = 0; s < kSites; ++s) {
    cfg.sites[s].peer_port = ports[s];
    cfg.sites[s].client_port = ports[kSites + s];
  }
  cfg.algorithm = causal::Algorithm::kOptTrack;
  cfg.protocol.fetch_timeout_us = 500'000;
  // Small enough to actually exercise engine backpressure under the
  // hammer, large enough not to throttle the run into serial.
  cfg.engine_queue_cap = 128;
  cfg.peer_queue_cap = 4096;
  return cfg;
}

/// Vars within [lo, hi) replicated at `site` — legal snapshot sets.
std::vector<causal::VarId> local_vars(const causal::ReplicaMap& rmap,
                                      causal::SiteId site, causal::VarId lo,
                                      causal::VarId hi) {
  std::vector<causal::VarId> out;
  for (causal::VarId x = lo; x < hi; ++x) {
    if (rmap.replicated_at(x, site)) out.push_back(x);
  }
  return out;
}

/// Recorded causal session: mixed put/get/snapshot on the recorded var
/// range, one session per site so per-process histories stay sequential.
void recorded_session(const server::ClusterConfig& cfg,
                      const causal::ReplicaMap& rmap, causal::SiteId site,
                      checker::HistoryRecorder* rec, std::uint64_t seed,
                      std::size_t ops) {
  client::Client::Options copts;
  copts.recorder = rec;
  client::Client cli(cfg, site, copts);
  util::Rng rng(seed);
  const auto snap_vars = local_vars(rmap, site, 0, kRecordedVars);
  for (std::size_t i = 0; i < ops; ++i) {
    const auto x = static_cast<causal::VarId>(rng.below(kRecordedVars));
    const double dice = rng.uniform01();
    if (dice < 0.4) {
      cli.put(x, "s" + std::to_string(site) + "-" + std::to_string(i));
    } else if (dice < 0.9 || snap_vars.empty()) {
      (void)cli.get(x);
    } else {
      (void)cli.snapshot(snap_vars);
    }
  }
}

/// Unrecorded hammer session: put/get/snapshot on the hammer var range,
/// with an occasional migration to the next site.
void hammer_session(const server::ClusterConfig& cfg,
                    const causal::ReplicaMap& rmap, causal::SiteId start,
                    std::uint64_t seed, std::size_t ops,
                    std::atomic<std::uint64_t>* completed) {
  client::Client cli(cfg, start);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < ops; ++i) {
    const auto x = static_cast<causal::VarId>(
        kRecordedVars + rng.below(kVars - kRecordedVars));
    const double dice = rng.uniform01();
    if (dice < 0.35) {
      cli.put(x, std::string(32, 'h'));
    } else if (dice < 0.85) {
      (void)cli.get(x);
    } else if (dice < 0.97) {
      const auto snap =
          local_vars(rmap, cli.site(), kRecordedVars, kVars);
      if (!snap.empty()) (void)cli.snapshot(snap);
    } else {
      cli.migrate((cli.site() + 1) % kSites);
    }
    completed->fetch_add(1, std::memory_order_relaxed);
  }
}

/// Parameterized over the engine-shard count: 1 = the historic single
/// protocol instance, 4 = sharded engines with cross-shard coverage-token
/// envelopes. The causal checker must pass identically for both.
class TcpStressTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TcpStressTest, ParallelClientsSurviveCausalCheck) {
  auto cfg = stress_config();
  cfg.protocol.engine_shards = GetParam();
  const auto rmap = cfg.replica_map();

  std::vector<std::unique_ptr<server::SiteServer>> servers;
  for (causal::SiteId s = 0; s < kSites; ++s) {
    servers.push_back(std::make_unique<server::SiteServer>(cfg, s));
    ASSERT_TRUE(servers.back()->start()) << "site " << s << " failed to bind";
  }

  checker::HistoryRecorder recorder;
  std::atomic<std::uint64_t> hammer_ops{0};
  constexpr std::size_t kHammerPerSite = 2;
  constexpr std::size_t kHammerOps = 60;
  constexpr std::size_t kRecordedOps = 50;

  {
    std::vector<std::thread> threads;
    for (causal::SiteId s = 0; s < kSites; ++s) {
      threads.emplace_back([&, s] {
        recorded_session(cfg, rmap, s, &recorder, 1000 + s, kRecordedOps);
      });
      for (std::size_t h = 0; h < kHammerPerSite; ++h) {
        threads.emplace_back([&, s, h] {
          hammer_session(cfg, rmap, s, 2000 + s * 10 + h, kHammerOps,
                         &hammer_ops);
        });
      }
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(hammer_ops.load(), kSites * kHammerPerSite * kHammerOps);

  // The engine actually carried the load, and the metrics endpoint reports
  // it: every site must show engine commands and the configured caps
  // (engine_stats aggregates across shards, so capacity scales with the
  // shard count).
  const std::uint32_t shards = GetParam();
  for (causal::SiteId s = 0; s < kSites; ++s) {
    ASSERT_EQ(servers[s]->engine_shards(), shards);
    const auto qs = servers[s]->engine_stats();
    EXPECT_GT(qs.enqueued_total(), 0u) << "site " << s;
    EXPECT_EQ(qs.capacity, cfg.engine_queue_cap * shards) << "site " << s;
    const auto per_shard = servers[s]->engine_shard_stats();
    EXPECT_EQ(per_shard.size(), shards) << "site " << s;
    for (const auto& ps : servers[s]->peer_stats()) {
      EXPECT_EQ(ps.queue_cap, cfg.peer_queue_cap);
    }
  }
  {
    client::Client probe(cfg, 0);
    const std::string text = probe.metrics_text();
    EXPECT_NE(text.find("ccpr_engine_queue_depth"), std::string::npos);
    EXPECT_NE(text.find("ccpr_engine_commands_total"), std::string::npos);
    EXPECT_NE(text.find("ccpr_writes_total"), std::string::npos);
    EXPECT_NE(text.find("ccpr_peer_batches_sent_total"), std::string::npos);
    EXPECT_NE(text.find("ccpr_engine_shards"), std::string::npos);
    if (shards > 1) {
      EXPECT_NE(text.find("shard=\"0\""), std::string::npos);
      EXPECT_NE(text.find("ccpr_shard_parked_envelopes"), std::string::npos);
    }
    // Per-shard engine counters over the wire.
    const auto es = probe.engine_stat();
    EXPECT_EQ(es.shards.size(), shards);
    std::uint64_t commands = 0;
    for (const auto& row : es.shards) commands += row.commands_total;
    EXPECT_GT(commands, 0u);
    const auto st = probe.status();
    EXPECT_EQ(st.shards.size(), shards);
  }

  for (auto& srv : servers) srv->stop();

  // Recorded sessions were one per site on a var range the hammer never
  // touched, so their read-from edges all resolve within the recording.
  // Applies were not recorded; delivery completeness is out of scope.
  checker::CheckOptions opts;
  opts.require_complete_delivery = false;
  const auto result =
      checker::check_causal_consistency(recorder, rmap, opts);
  EXPECT_TRUE(result.ok);
  for (const auto& v : result.violations) ADD_FAILURE() << v;
  EXPECT_GT(result.ops_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(EngineShards, TcpStressTest,
                         ::testing::Values(1u, 4u),
                         [](const auto& info) {
                           return "shards" + std::to_string(info.param);
                         });

// Regression test for the dead-peer availability hole: with a blocking
// per-peer queue cap, the apply thread would park in transport send() once
// a crashed peer's queue filled — freezing every client op — and stop()
// (which joins the apply thread before stopping the transport) would then
// deadlock. The drop-oldest overflow policy must keep the site serving and
// let stop() return.
TEST(TcpStressTest, DeadPeerOverflowDoesNotWedgeSiteOrStop) {
  const auto ports = pick_ports(4);
  auto cfg = server::ClusterConfig::loopback(2, 4, 2, 0);
  for (std::uint32_t s = 0; s < 2; ++s) {
    cfg.sites[s].peer_port = ports[s];
    cfg.sites[s].client_port = ports[2 + s];
  }
  cfg.algorithm = causal::Algorithm::kOptTrack;
  cfg.peer_queue_cap = 8;  // overflow toward the dead peer quickly

  // Site 1 never starts. Every put broadcasts an update toward it; the 9th
  // would previously wedge the apply thread for good.
  server::SiteServer s0(cfg, 0);
  ASSERT_TRUE(s0.start());
  {
    client::Client cli(cfg, 0);
    for (int i = 0; i < 200; ++i) {
      cli.put(static_cast<causal::VarId>(i % 4), "v" + std::to_string(i));
    }
    EXPECT_FALSE(cli.get(0).data.empty());
  }
  std::uint64_t drops = 0;
  for (const auto& ps : s0.peer_stats()) drops += ps.overflow_drops;
  EXPECT_GT(drops, 0u);
  s0.stop();  // must return: nothing can be parked in transport send()
}

}  // namespace
}  // namespace ccpr
