// Causally consistent multi-key snapshot reads (ThreadedCluster::read_many,
// GeoStore::Session::snapshot_get).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "checker/causal_checker.hpp"
#include "store/geo_store.hpp"

namespace ccpr::causal {
namespace {

TEST(SnapshotReadTest, ReturnsAllValuesInKeyOrder) {
  ThreadedCluster c(Algorithm::kOptTrack, ReplicaMap::full(2, 3));
  c.write(0, 0, "a");
  c.write(0, 1, "b");
  c.write(0, 2, "c");
  c.drain();
  const auto values = c.read_many(1, {0, 1, 2});
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].data, "a");
  EXPECT_EQ(values[1].data, "b");
  EXPECT_EQ(values[2].data, "c");
}

TEST(SnapshotReadTest, UnwrittenKeysReadInitial) {
  ThreadedCluster c(Algorithm::kOptTrackCRP, ReplicaMap::full(2, 2));
  const auto values = c.read_many(0, {0, 1});
  EXPECT_TRUE(values[0].id.is_initial());
  EXPECT_TRUE(values[1].id.is_initial());
}

TEST(SnapshotReadTest, RequiresLocalReplication) {
  // Var 0 lives only at site 1.
  ThreadedCluster c(Algorithm::kOptTrack, ReplicaMap::custom(2, {{1}}));
  EXPECT_DEATH({ (void)c.read_many(0, {0}); }, "Precondition");
}

TEST(SnapshotReadTest, CutIsCausallyClosedUnderConcurrentWriters) {
  // Writer thread repeatedly writes x then (after it knows x applied
  // locally) y referring to x's round; the snapshot must never see y from a
  // newer round than x. Sequential gets could interleave with the
  // delivery between the two reads; read_many cannot.
  ThreadedCluster::Options opts;
  opts.max_delay_us = 200;
  ThreadedCluster c(Algorithm::kOptTrack, ReplicaMap::full(2, 2), opts);

  std::atomic<bool> stop{false};
  std::thread writer([&c, &stop] {
    for (int round = 1; round < 200 && !stop; ++round) {
      c.write(0, 0, std::to_string(round));  // x
      c.write(0, 1, std::to_string(round));  // y, causally after x
    }
  });

  for (int i = 0; i < 300; ++i) {
    const auto values = c.read_many(1, {0, 1});
    const int x = values[0].data.empty() ? 0 : std::stoi(values[0].data);
    const int y = values[1].data.empty() ? 0 : std::stoi(values[1].data);
    // y's round may lag x's (x written first) but never lead it: y(round)
    // causally depends on x(round).
    EXPECT_LE(y, x) << "snapshot saw y from round " << y
                    << " with x from round " << x;
  }
  stop = true;
  writer.join();
  c.drain();
  const auto result =
      checker::check_causal_consistency(c.history(), c.replica_map());
  EXPECT_TRUE(result.ok);
}

TEST(SnapshotReadTest, GeoStoreSnapshotGet) {
  store::GeoStore store(store::KeySpace({"balance", "ledger"}),
                        ReplicaMap::full(2, 2));
  auto writer = store.session(0);
  writer.put("balance", "100");
  writer.put("ledger", "deposit 100");
  store.flush();
  auto reader = store.session(1);
  const auto snap = reader.snapshot_get({"ledger", "balance"});
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0], "deposit 100");
  EXPECT_EQ(snap[1], "100");
}

}  // namespace
}  // namespace ccpr::causal
