// Longer randomized soak runs — an order of magnitude more operations than
// the integration sweep, to surface slow metadata leaks, log growth, or
// rare activation races that short runs miss.
#include <gtest/gtest.h>

#include <memory>

#include "test_support.hpp"
#include "workload/workload.hpp"

namespace ccpr::causal {
namespace {

void soak(Algorithm alg, std::uint32_t p, double write_rate,
          std::uint64_t seed) {
  const std::uint32_t n = 8, q = 32;
  workload::WorkloadSpec spec;
  spec.ops_per_site = 1'000;
  spec.write_rate = write_rate;
  spec.dist = workload::WorkloadSpec::KeyDist::kZipf;
  spec.zipf_theta = 0.8;
  spec.locality = 0.3;
  spec.value_bytes = 24;
  spec.seed = seed;
  const auto rmap = ReplicaMap::even(n, q, p);
  const Program program = workload::generate_program(spec, rmap);

  SimCluster::Options opts;
  opts.latency = std::make_unique<sim::LogNormalLatency>(15'000.0, 0.6);
  opts.latency_seed = seed * 13 + 1;
  opts.mean_think_us = 1'000;
  SimCluster cluster(alg, ReplicaMap::even(n, q, p), std::move(opts));
  cluster.run_program(program);

  EXPECT_EQ(cluster.pending_updates(), 0u);
  const auto m = cluster.metrics();
  EXPECT_EQ(m.writes + m.reads, static_cast<std::uint64_t>(n) * 1'000u);
  // Metadata stays bounded by the algorithm's structural footprint — never
  // by the number of operations (8000 here). Full-Track's unit is matrix
  // cells: (1 + vars stored locally) * n^2; the log-based algorithms must
  // stay in the tens of records.
  const std::uint64_t bound =
      alg == Algorithm::kFullTrack
          ? (1u + q * p / n + 1u) * static_cast<std::uint64_t>(n) * n
          : 200u;
  EXPECT_LT(m.log_entries.peak(), bound);
  ccpr::testing::expect_causal(cluster);
}

TEST(SoakTest, OptTrackPartialWriteHeavy) {
  soak(Algorithm::kOptTrack, 3, 0.6, 101);
}

TEST(SoakTest, OptTrackPartialReadHeavy) {
  soak(Algorithm::kOptTrack, 3, 0.1, 102);
}

TEST(SoakTest, FullTrackPartial) {
  soak(Algorithm::kFullTrack, 3, 0.4, 103);
}

TEST(SoakTest, OptTrackSingleReplica) {
  soak(Algorithm::kOptTrack, 1, 0.5, 104);
}

TEST(SoakTest, CrpFullReplication) {
  soak(Algorithm::kOptTrackCRP, 8, 0.4, 105);
}

}  // namespace
}  // namespace ccpr::causal
