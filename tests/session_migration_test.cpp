// Client migration between sites. A roaming client's operations span two
// application processes, so causal memory alone does NOT protect its
// session guarantees — the coverage-token handshake must.
#include <gtest/gtest.h>

#include "store/geo_store.hpp"
#include "test_support.hpp"

namespace ccpr::causal {
namespace {

using ccpr::testing::matrix_latency;

class SessionMigration : public ::testing::TestWithParam<Algorithm> {};

TEST_P(SessionMigration, WithoutHandshakeTheMoveCanBeStale) {
  // Site 2 lags site 0 by 90ms. A client that wrote at site 0 and
  // immediately continues at site 2 reads its write's variable as initial:
  // exactly the anomaly migration must prevent. (Legal for causal memory —
  // two different processes — which is why the checker stays green.)
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(GetParam(), ReplicaMap::full(3, 2), std::move(opts));
  c.write(0, 0, "mine");
  EXPECT_TRUE(c.site(2).peek(0).data.empty());  // naive move would be stale
  c.run();
  ccpr::testing::expect_causal(c);
}

TEST_P(SessionMigration, AwaitCoverageMakesTheMoveSafe) {
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(GetParam(), ReplicaMap::full(3, 2), std::move(opts));
  c.write(0, 0, "mine");
  c.await_coverage(/*from=*/0, /*to=*/2);
  // Read-your-writes survives the migration.
  EXPECT_EQ(c.read(2, 0).data, "mine");
  c.run();
  ccpr::testing::expect_causal(c);
}

TEST_P(SessionMigration, MonotonicReadsSurviveMigration) {
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(GetParam(), ReplicaMap::full(3, 2), std::move(opts));
  c.write(0, 0, "v1");
  c.run();
  c.write(0, 0, "v2");
  c.run_until(c.scheduler().now() + 5'000);  // v2 reached site 1, not 2
  ASSERT_EQ(c.read(1, 0).data, "v2");        // session observed v2 at site 1
  c.await_coverage(1, 2);
  EXPECT_EQ(c.read(2, 0).data, "v2");  // no regression to v1 after moving
  c.run();
  ccpr::testing::expect_causal(c);
}

TEST_P(SessionMigration, CoverageIsImmediateWhenTargetIsFresh) {
  SimCluster c(GetParam(), ReplicaMap::full(2, 2),
               ccpr::testing::constant_latency(1'000));
  c.write(0, 0, "x");
  c.run();  // fully propagated
  EXPECT_EQ(c.await_coverage(0, 1), 0u);  // nothing to wait for
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, SessionMigration,
    ::testing::Values(Algorithm::kFullTrack, Algorithm::kOptTrack,
                      Algorithm::kOptTrackCRP, Algorithm::kOptP,
                      Algorithm::kAhamad),
    [](const ::testing::TestParamInfo<Algorithm>& param_info) {
      std::string name = algorithm_name(param_info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(SessionMigrationPartial, TokenOnlyWaitsForTargetRelevantWrites) {
  // Partial replication: writes NOT destined to the target must not block
  // the migration. Var 0 lives at {0,1}; var 1 lives at {0,2}. A write to
  // var 0 (never reaching site 2) must not stall await_coverage(0, 2).
  auto rmap = ReplicaMap::custom(3, {{0, 1}, {0, 2}});
  SimCluster c(Algorithm::kOptTrack, std::move(rmap),
               ccpr::testing::constant_latency(50'000));
  c.write(0, 0, "only-for-site-1");
  // The update to site 1 is still in flight, yet site 2 needs nothing.
  EXPECT_EQ(c.await_coverage(0, 2), 0u);
  c.write(0, 1, "for-site-2");
  EXPECT_GT(c.await_coverage(0, 2), 0u);  // now there is something to wait on
  EXPECT_EQ(c.site(2).peek(1).data, "for-site-2");
  c.run();
}

TEST(SessionMigrationStore, GeoStoreSessionMigrates) {
  store::GeoStore::Options opts;
  opts.algorithm = Algorithm::kOptTrack;
  opts.max_delay_us = 300;
  store::GeoStore store(store::KeySpace({"inbox", "drafts"}),
                        ReplicaMap::even(3, 2, 2), opts);
  auto session = store.session(0);
  session.put("inbox", "42 unread");
  session.migrate(2);
  EXPECT_EQ(session.site(), 2u);
  EXPECT_EQ(session.get("inbox"), "42 unread");  // read-your-writes held
  store.flush();
  const auto result = checker::check_causal_consistency(
      store.history(), store.replica_map());
  EXPECT_TRUE(result.ok);
}

}  // namespace
}  // namespace ccpr::causal
