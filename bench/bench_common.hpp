// Shared driver for the experiment harness binaries (one binary per paper
// table/figure; see DESIGN.md §4 for the experiment index).
#pragma once

#include <iostream>
#include <memory>
#include <string>

#include "causal/sim_cluster.hpp"
#include "util/table.hpp"
#include "workload/workload.hpp"

namespace ccpr::bench {

struct RunConfig {
  causal::Algorithm alg = causal::Algorithm::kOptTrack;
  std::uint32_t n = 10;
  std::uint32_t q = 100;
  std::uint32_t p = 3;
  workload::WorkloadSpec workload{};
  causal::ProtocolOptions protocol{};
  /// Latency: uniform [lo, hi] microseconds unless a model is supplied.
  sim::SimTime lat_lo_us = 10'000;
  sim::SimTime lat_hi_us = 50'000;
  std::unique_ptr<sim::LatencyModel> latency;  // optional override
  std::uint64_t latency_seed = 1;
  sim::SimTime mean_think_us = 2'000;
  bool record_history = false;  // benches do not re-verify; tests do
};

struct RunResult {
  metrics::Metrics metrics;
  sim::SimTime sim_duration_us = 0;
  std::uint64_t events = 0;
};

/// Runs one generated workload to quiescence and returns merged metrics.
inline RunResult run_workload(RunConfig cfg) {
  auto rmap = causal::ReplicaMap::even(cfg.n, cfg.q, cfg.p);
  const causal::Program program =
      workload::generate_program(cfg.workload, rmap);

  causal::SimCluster::Options opts;
  opts.protocol = cfg.protocol;
  opts.latency = cfg.latency
                     ? std::move(cfg.latency)
                     : std::make_unique<sim::UniformLatency>(cfg.lat_lo_us,
                                                             cfg.lat_hi_us);
  opts.latency_seed = cfg.latency_seed;
  opts.mean_think_us = cfg.mean_think_us;
  opts.record_history = cfg.record_history;

  causal::SimCluster cluster(cfg.alg, std::move(rmap), std::move(opts));
  cluster.run_program(program);

  RunResult result;
  result.metrics = cluster.metrics();
  result.sim_duration_us = cluster.scheduler().now();
  result.events = cluster.scheduler().events_fired();
  return result;
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_ref,
                         const std::string& what) {
  std::cout << "\n=== " << experiment << " — " << paper_ref << " ===\n"
            << what << "\n\n";
}

}  // namespace ccpr::bench
