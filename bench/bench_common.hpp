// Shared driver for the experiment harness binaries (one binary per paper
// table/figure; see DESIGN.md §4 for the experiment index).
//
// Every bench binary speaks the same small CLI so the sweep runner
// (tools/sweep) can drive all of them uniformly:
//
//   --quick        trim the grid to a CI-sized subset
//   --out=PATH     write a BENCH_<name>.json snapshot (omit: table only)
//   --seed=N       base seed for the bench's workloads (per-bench default)
//
// Unknown flags are a hard error (exit 2): a typo like --opps= must never
// silently run the default configuration.
#pragma once

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "causal/sim_cluster.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "workload/workload.hpp"

namespace ccpr::bench {

struct RunConfig {
  causal::Algorithm alg = causal::Algorithm::kOptTrack;
  std::uint32_t n = 10;
  std::uint32_t q = 100;
  std::uint32_t p = 3;
  workload::WorkloadSpec workload{};
  causal::ProtocolOptions protocol{};
  /// Latency: uniform [lo, hi] microseconds unless a model is supplied.
  sim::SimTime lat_lo_us = 10'000;
  sim::SimTime lat_hi_us = 50'000;
  std::unique_ptr<sim::LatencyModel> latency;  // optional override
  std::uint64_t latency_seed = 1;
  sim::SimTime mean_think_us = 2'000;
  bool record_history = false;  // benches do not re-verify; tests do
};

struct RunResult {
  metrics::Metrics metrics;
  sim::SimTime sim_duration_us = 0;
  std::uint64_t events = 0;
};

/// Runs one generated workload to quiescence and returns merged metrics.
inline RunResult run_workload(RunConfig cfg) {
  auto rmap = causal::ReplicaMap::even(cfg.n, cfg.q, cfg.p);
  const causal::Program program =
      workload::generate_program(cfg.workload, rmap);

  causal::SimCluster::Options opts;
  opts.protocol = cfg.protocol;
  opts.latency = cfg.latency
                     ? std::move(cfg.latency)
                     : std::make_unique<sim::UniformLatency>(cfg.lat_lo_us,
                                                             cfg.lat_hi_us);
  opts.latency_seed = cfg.latency_seed;
  opts.mean_think_us = cfg.mean_think_us;
  opts.record_history = cfg.record_history;

  causal::SimCluster cluster(cfg.alg, std::move(rmap), std::move(opts));
  cluster.run_program(program);

  RunResult result;
  result.metrics = cluster.metrics();
  result.sim_duration_us = cluster.scheduler().now();
  result.events = cluster.scheduler().events_fired();
  return result;
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_ref,
                         const std::string& what) {
  std::cout << "\n=== " << experiment << " — " << paper_ref << " ===\n"
            << what << "\n\n";
}

/// The uniform bench CLI. parse() rejects unknown flags (exit 2), so every
/// binary must go through it before reading anything bench-specific.
struct Args {
  bool quick = false;
  std::string out;          // snapshot path; empty = don't write
  std::uint64_t seed = 1;   // base seed; benches derive workload seeds

  static Args parse(int argc, const char* const* argv,
                    const std::string& bench_name,
                    std::uint64_t default_seed,
                    const std::string& default_out = "") {
    const auto flags = util::Flags::parse(argc, argv);
    Args args;
    args.quick = flags.get_bool("quick", false);
    args.out = flags.get_string("out", default_out);
    args.seed = static_cast<std::uint64_t>(
        flags.get_int("seed", static_cast<std::int64_t>(default_seed)));
    flags.exit_on_unknown(bench_name);
    return args;
  }
};

/// Collects per-cell result rows and writes the BENCH_<name>.json snapshot:
///
///   {"bench": ..., "quick": ..., "seed": ..., "results": [{...}, ...]}
///
/// Rows carry both the cell's configuration fields (strings / grid values,
/// identical across seeds) and its measured metrics (what the sweep
/// aggregator folds into mean±std across seeds, and what the CI gate
/// compares against the committed baseline).
class JsonReporter {
 public:
  JsonReporter(std::string bench_name, const Args& args)
      : out_path_(args.out) {
    doc_["bench"] = std::move(bench_name);
    doc_["quick"] = args.quick;
    doc_["seed"] = args.seed;
    doc_["results"] = util::Json::array();
  }

  void add_row(util::Json::Object row) {
    doc_["results"].push_back(util::Json(std::move(row)));
  }
  void add_skipped(util::Json::Object row) {
    doc_["skipped"].push_back(util::Json(std::move(row)));
  }
  /// Extra top-level snapshot fields (summary scalars, grid notes).
  util::Json& extra(const std::string& key) { return doc_[key]; }

  std::size_t rows() const { return doc_["results"].size(); }

  /// Writes the snapshot if --out was given. Returns false (and prints to
  /// stderr) on I/O failure so benches can propagate a nonzero exit.
  bool write() const {
    if (out_path_.empty()) return true;
    if (!doc_.save_file(out_path_)) {
      std::fprintf(stderr, "%s: cannot write %s\n",
                   doc_["bench"].as_string().c_str(), out_path_.c_str());
      return false;
    }
    std::printf("wrote %s (%zu cells)\n", out_path_.c_str(),
                doc_["results"].size());
    return true;
  }

 private:
  util::Json doc_ = util::Json::object();
  std::string out_path_;
};

}  // namespace ccpr::bench
