// Experiment E3 — Table I, row "Message size":
//   Full-Track: O(n^2) control bytes per update (the Write matrix)
//   Opt-Track:  O(n^2 p w + n r (n-p)) worst case, O(n) per message
//               amortized (Chandra et al. analysis adopted by the paper)
//   Opt-Track-CRP: O(d) 2-tuples per message
//   OptP:       O(n) per message (the Write vector)
// Measured: mean control bytes per transport message as n grows. The
// growth-rate column (size at n / size at previous n) makes the asymptotic
// class visible: ~4x per doubling for Full-Track, ~2x for Opt-Track/OptP,
// ~1x for Opt-Track-CRP.
#include "bench_common.hpp"

#include <iostream>
#include <map>
#include <vector>

using namespace ccpr;

namespace {

double bytes_per_message(causal::Algorithm alg, std::uint32_t n,
                         std::uint32_t p, std::uint64_t ops,
                         std::uint64_t seed) {
  bench::RunConfig cfg;
  cfg.alg = alg;
  cfg.n = n;
  cfg.q = 8 * n;
  cfg.p = p;
  cfg.workload.ops_per_site = ops;
  cfg.workload.write_rate = 0.4;
  cfg.workload.value_bytes = 8;
  cfg.workload.seed = seed;
  return bench::run_workload(std::move(cfg)).metrics
      .control_bytes_per_message();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args =
      bench::Args::parse(argc, argv, "table1_message_size", 5);
  bench::print_header(
      "E3 table1_message_size", "paper Table I (message size)",
      "Mean control bytes per message vs n (q=8n, w_rate=0.4, p=3 for\n"
      "partial algorithms). 'x' columns = growth factor per doubling of n.");
  bench::JsonReporter report("table1_message_size", args);

  const std::uint64_t ops_per_site = args.quick ? 120 : 300;
  const std::vector<std::uint32_t> ns =
      args.quick ? std::vector<std::uint32_t>{4, 8, 16}
                 : std::vector<std::uint32_t>{4, 8, 16, 32};
  struct AlgSpec {
    causal::Algorithm alg;
    bool partial;
  };
  const std::vector<AlgSpec> algs{
      {causal::Algorithm::kFullTrack, true},
      {causal::Algorithm::kOptTrack, true},
      {causal::Algorithm::kOptTrackCRP, false},
      {causal::Algorithm::kOptP, false},
  };

  std::vector<std::string> headers{"n"};
  for (const auto& a : algs) {
    headers.emplace_back(causal::algorithm_name(a.alg));
    headers.emplace_back("x");
  }
  util::Table table(headers);

  std::map<causal::Algorithm, double> prev;
  for (const auto n : ns) {
    table.row();
    table.cell(static_cast<std::uint64_t>(n));
    for (const auto& a : algs) {
      const std::uint32_t p = a.partial ? std::min(3u, n) : n;
      const double bpm =
          bytes_per_message(a.alg, n, p, ops_per_site, args.seed);
      table.cell(bpm, 1);
      if (prev.count(a.alg) != 0 && prev[a.alg] > 0) {
        table.cell(bpm / prev[a.alg], 2);
      } else {
        table.cell("-");
      }
      prev[a.alg] = bpm;
      report.add_row({{"n", n},
                      {"alg", causal::algorithm_token(a.alg)},
                      {"p", p},
                      {"ctrl_bytes_per_msg", bpm}});
    }
  }

  table.print(std::cout);
  std::cout
      << "\nExpected shape per doubling of n: Full-Track -> ~4x (O(n^2)),\n"
         "Opt-Track -> ~<=2x (O(n) amortized), OptP -> ~2x (O(n)),\n"
         "Opt-Track-CRP -> ~1x (O(d), independent of n).\n";
  return report.write() ? 0 : 1;
}
