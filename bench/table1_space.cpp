// Experiment E5 — Table I, row "Space complexity":
//   Full-Track O(npq), Opt-Track O(npq) worst / O(pq) amortized,
//   Opt-Track-CRP O(max(n, q)), OptP O(nq).
// Reported: peak and mean serialized causal-metadata bytes per site, and
// the causal-log length, as q and n grow.
#include "bench_common.hpp"

#include <iostream>

using namespace ccpr;

namespace {

struct SpaceResult {
  std::uint64_t peak_bytes;
  double mean_bytes;
  double mean_log_entries;
};

SpaceResult measure(causal::Algorithm alg, std::uint32_t n, std::uint32_t q,
                    std::uint32_t p, std::uint64_t ops, std::uint64_t seed) {
  bench::RunConfig cfg;
  cfg.alg = alg;
  cfg.n = n;
  cfg.q = q;
  cfg.p = p;
  cfg.workload.ops_per_site = ops;
  cfg.workload.write_rate = 0.5;
  cfg.workload.seed = seed;
  const auto r = bench::run_workload(std::move(cfg));
  return SpaceResult{r.metrics.meta_state_bytes.peak(),
                     r.metrics.meta_state_bytes.samples().mean(),
                     r.metrics.log_entries.samples().mean()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, "table1_space", 21);
  bench::print_header(
      "E5 table1_space", "paper Table I (space complexity)",
      "Per-site causal metadata footprint (peak bytes over the run / mean\n"
      "bytes / mean causal-log entries), w_rate=0.5, p=3 partial.");
  bench::JsonReporter report("table1_space", args);
  const std::uint64_t ops_per_site = args.quick ? 150 : 400;

  struct AlgSpec {
    causal::Algorithm alg;
    bool partial;
  };
  const AlgSpec algs[] = {
      {causal::Algorithm::kFullTrack, true},
      {causal::Algorithm::kOptTrack, true},
      {causal::Algorithm::kOptTrackCRP, false},
      {causal::Algorithm::kOptP, false},
  };

  std::cout << "-- sweep q at n=8 --\n";
  {
    std::vector<std::string> headers{"q"};
    for (const auto& a : algs) {
      headers.push_back(std::string(causal::algorithm_name(a.alg)) +
                        " peakB/meanB/log");
    }
    util::Table table(headers);
    const auto q_grid = args.quick ? std::vector<std::uint32_t>{32u, 128u}
                                   : std::vector<std::uint32_t>{32u, 64u,
                                                                128u, 256u};
    for (const std::uint32_t q : q_grid) {
      table.row();
      table.cell(static_cast<std::uint64_t>(q));
      for (const auto& a : algs) {
        const std::uint32_t p = a.partial ? 3 : 8;
        const auto r = measure(a.alg, 8, q, p, ops_per_site, args.seed);
        table.cell(std::to_string(r.peak_bytes) + "/" +
                   util::format_double(r.mean_bytes, 0) + "/" +
                   util::format_double(r.mean_log_entries, 1));
        report.add_row({{"sweep", "q"},
                        {"n", 8},
                        {"q", q},
                        {"alg", causal::algorithm_token(a.alg)},
                        {"p", p},
                        {"peak_bytes", r.peak_bytes},
                        {"mean_bytes", r.mean_bytes},
                        {"mean_log_entries", r.mean_log_entries}});
      }
    }
    table.print(std::cout);
  }

  std::cout << "\n-- sweep n at q=64 --\n";
  {
    std::vector<std::string> headers{"n"};
    for (const auto& a : algs) {
      headers.push_back(std::string(causal::algorithm_name(a.alg)) +
                        " peakB/meanB/log");
    }
    util::Table table(headers);
    const auto n_grid = args.quick ? std::vector<std::uint32_t>{4u, 16u}
                                   : std::vector<std::uint32_t>{4u, 8u, 16u,
                                                                32u};
    for (const std::uint32_t n : n_grid) {
      table.row();
      table.cell(static_cast<std::uint64_t>(n));
      for (const auto& a : algs) {
        const std::uint32_t p = a.partial ? std::min(3u, n) : n;
        const auto r = measure(a.alg, n, 64, p, ops_per_site, args.seed);
        table.cell(std::to_string(r.peak_bytes) + "/" +
                   util::format_double(r.mean_bytes, 0) + "/" +
                   util::format_double(r.mean_log_entries, 1));
        report.add_row({{"sweep", "n"},
                        {"n", n},
                        {"q", 64},
                        {"alg", causal::algorithm_token(a.alg)},
                        {"p", p},
                        {"peak_bytes", r.peak_bytes},
                        {"mean_bytes", r.mean_bytes},
                        {"mean_log_entries", r.mean_log_entries}});
      }
    }
    table.print(std::cout);
  }

  std::cout
      << "\nExpected shape: Full-Track grows with n^2 (matrix per stored\n"
         "variable) and with q; Opt-Track stays near O(pq) amortized;\n"
         "Opt-Track-CRP tracks max(n, q); OptP tracks n*q.\n";
  return report.write() ? 0 : 1;
}
