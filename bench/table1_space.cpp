// Experiment E5 — Table I, row "Space complexity":
//   Full-Track O(npq), Opt-Track O(npq) worst / O(pq) amortized,
//   Opt-Track-CRP O(max(n, q)), OptP O(nq).
// Reported: peak and mean serialized causal-metadata bytes per site, and
// the causal-log length, as q and n grow.
#include "bench_common.hpp"

#include <iostream>

using namespace ccpr;

namespace {

struct SpaceResult {
  std::uint64_t peak_bytes;
  double mean_bytes;
  double mean_log_entries;
};

SpaceResult measure(causal::Algorithm alg, std::uint32_t n, std::uint32_t q,
                    std::uint32_t p) {
  bench::RunConfig cfg;
  cfg.alg = alg;
  cfg.n = n;
  cfg.q = q;
  cfg.p = p;
  cfg.workload.ops_per_site = 400;
  cfg.workload.write_rate = 0.5;
  cfg.workload.seed = 21;
  const auto r = bench::run_workload(std::move(cfg));
  return SpaceResult{r.metrics.meta_state_bytes.peak(),
                     r.metrics.meta_state_bytes.samples().mean(),
                     r.metrics.log_entries.samples().mean()};
}

}  // namespace

int main() {
  bench::print_header(
      "E5 table1_space", "paper Table I (space complexity)",
      "Per-site causal metadata footprint (peak bytes over the run / mean\n"
      "bytes / mean causal-log entries), w_rate=0.5, p=3 partial.");

  struct AlgSpec {
    causal::Algorithm alg;
    bool partial;
  };
  const AlgSpec algs[] = {
      {causal::Algorithm::kFullTrack, true},
      {causal::Algorithm::kOptTrack, true},
      {causal::Algorithm::kOptTrackCRP, false},
      {causal::Algorithm::kOptP, false},
  };

  std::cout << "-- sweep q at n=8 --\n";
  {
    std::vector<std::string> headers{"q"};
    for (const auto& a : algs) {
      headers.push_back(std::string(causal::algorithm_name(a.alg)) +
                        " peakB/meanB/log");
    }
    util::Table table(headers);
    for (const std::uint32_t q : {32u, 64u, 128u, 256u}) {
      table.row();
      table.cell(static_cast<std::uint64_t>(q));
      for (const auto& a : algs) {
        const auto r = measure(a.alg, 8, q, a.partial ? 3 : 8);
        table.cell(std::to_string(r.peak_bytes) + "/" +
                   util::format_double(r.mean_bytes, 0) + "/" +
                   util::format_double(r.mean_log_entries, 1));
      }
    }
    table.print(std::cout);
  }

  std::cout << "\n-- sweep n at q=64 --\n";
  {
    std::vector<std::string> headers{"n"};
    for (const auto& a : algs) {
      headers.push_back(std::string(causal::algorithm_name(a.alg)) +
                        " peakB/meanB/log");
    }
    util::Table table(headers);
    for (const std::uint32_t n : {4u, 8u, 16u, 32u}) {
      table.row();
      table.cell(static_cast<std::uint64_t>(n));
      for (const auto& a : algs) {
        const auto r = measure(a.alg, n, 64, a.partial ? std::min(3u, n) : n);
        table.cell(std::to_string(r.peak_bytes) + "/" +
                   util::format_double(r.mean_bytes, 0) + "/" +
                   util::format_double(r.mean_log_entries, 1));
      }
    }
    table.print(std::cout);
  }

  std::cout
      << "\nExpected shape: Full-Track grows with n^2 (matrix per stored\n"
         "variable) and with q; Opt-Track stays near O(pq) amortized;\n"
         "Opt-Track-CRP tracks max(n, q); OptP tracks n*q.\n";
  return 0;
}
