// Experiment E2 — Table I, row "Message count":
//   Full-Track / Opt-Track:  p*w + 2*r*(n-p)/n      (partial replication)
//   Opt-Track-CRP / OptP:    n*w                    (full replication)
// Measured message counts for all four algorithms on identical workloads,
// against the closed-form predictions.
//
//   build/bench/table1_message_count [--quick] [--out=...] [--seed=N]
#include "bench_common.hpp"

#include <iostream>

using namespace ccpr;

int main(int argc, char** argv) {
  const auto args =
      bench::Args::parse(argc, argv, "table1_message_count", 99);
  bench::print_header(
      "E2 table1_message_count", "paper Table I (message count)",
      "n=10, q=100, p=3 for partial algorithms, 400 ops/site.\n"
      "Formulas charge multicasts p (resp. n) messages including the\n"
      "writer's own replica; measured counts skip the self-send.");
  bench::JsonReporter report("table1_message_count", args);

  const std::uint32_t n = 10;
  const std::uint64_t ops_per_site = args.quick ? 150 : 400;
  const double total_ops = static_cast<double>(ops_per_site) * n;
  const std::vector<double> w_rates =
      args.quick ? std::vector<double>{0.1, 0.5, 0.9}
                 : std::vector<double>{0.1, 0.3, 0.5, 0.7, 0.9};

  util::Table table({"w_rate", "Full-Track (p=3)", "Opt-Track (p=3)",
                     "pred partial", "Opt-Track-CRP", "OptP", "pred full"});

  const auto run_one = [&](causal::Algorithm alg, std::uint32_t p,
                           double w_rate) {
    bench::RunConfig cfg;
    cfg.alg = alg;
    cfg.n = n;
    cfg.q = 100;
    cfg.p = p;
    cfg.workload.ops_per_site = ops_per_site;
    cfg.workload.write_rate = w_rate;
    cfg.workload.seed = args.seed;
    return bench::run_workload(std::move(cfg)).metrics.messages_total();
  };

  for (const double w_rate : w_rates) {
    const double writes = w_rate * total_ops;
    const double reads = total_ops - writes;
    const double pred_partial =
        workload::predicted_messages_partial(n, 3, writes, reads);
    const double pred_full = workload::predicted_messages_full(n, writes);
    table.row();
    table.cell(w_rate, 1);
    for (const auto alg :
         {causal::Algorithm::kFullTrack, causal::Algorithm::kOptTrack}) {
      const auto msgs = run_one(alg, 3, w_rate);
      table.cell(msgs);
      report.add_row({{"w_rate", w_rate},
                      {"alg", causal::algorithm_token(alg)},
                      {"p", 3},
                      {"messages", msgs},
                      {"predicted", pred_partial}});
    }
    table.cell(pred_partial, 0);
    for (const auto alg :
         {causal::Algorithm::kOptTrackCRP, causal::Algorithm::kOptP}) {
      const auto msgs = run_one(alg, n, w_rate);
      table.cell(msgs);
      report.add_row({{"w_rate", w_rate},
                      {"alg", causal::algorithm_token(alg)},
                      {"p", n},
                      {"messages", msgs},
                      {"predicted", pred_full}});
    }
    table.cell(pred_full, 0);
  }

  table.print(std::cout);
  std::cout << "\nShape check: partial-replication counts sit near the\n"
               "partial prediction and beat full replication once w_rate\n"
               "exceeds 2/(2+n) = "
            << util::format_double(workload::crossover_write_rate(n), 3)
            << ".\n";
  return report.write() ? 0 : 1;
}
