// Experiment E2 — Table I, row "Message count":
//   Full-Track / Opt-Track:  p*w + 2*r*(n-p)/n      (partial replication)
//   Opt-Track-CRP / OptP:    n*w                    (full replication)
// Measured message counts for all four algorithms on identical workloads,
// against the closed-form predictions.
#include "bench_common.hpp"

#include <iostream>

using namespace ccpr;

int main() {
  bench::print_header(
      "E2 table1_message_count", "paper Table I (message count)",
      "n=10, q=100, p=3 for partial algorithms, 400 ops/site.\n"
      "Formulas charge multicasts p (resp. n) messages including the\n"
      "writer's own replica; measured counts skip the self-send.");

  const std::uint32_t n = 10;
  const std::uint64_t ops_per_site = 400;
  const double total_ops = static_cast<double>(ops_per_site) * n;

  util::Table table({"w_rate", "Full-Track (p=3)", "Opt-Track (p=3)",
                     "pred partial", "Opt-Track-CRP", "OptP", "pred full"});

  for (double w_rate : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double writes = w_rate * total_ops;
    const double reads = total_ops - writes;
    table.row();
    table.cell(w_rate, 1);
    for (const auto alg :
         {causal::Algorithm::kFullTrack, causal::Algorithm::kOptTrack}) {
      bench::RunConfig cfg;
      cfg.alg = alg;
      cfg.n = n;
      cfg.q = 100;
      cfg.p = 3;
      cfg.workload.ops_per_site = ops_per_site;
      cfg.workload.write_rate = w_rate;
      cfg.workload.seed = 99;
      table.cell(bench::run_workload(std::move(cfg)).metrics.messages_total());
    }
    table.cell(workload::predicted_messages_partial(n, 3, writes, reads), 0);
    for (const auto alg :
         {causal::Algorithm::kOptTrackCRP, causal::Algorithm::kOptP}) {
      bench::RunConfig cfg;
      cfg.alg = alg;
      cfg.n = n;
      cfg.q = 100;
      cfg.p = n;
      cfg.workload.ops_per_site = ops_per_site;
      cfg.workload.write_rate = w_rate;
      cfg.workload.seed = 99;
      table.cell(bench::run_workload(std::move(cfg)).metrics.messages_total());
    }
    table.cell(workload::predicted_messages_full(n, writes), 0);
  }

  table.print(std::cout);
  std::cout << "\nShape check: partial-replication counts sit near the\n"
               "partial prediction and beat full replication once w_rate\n"
               "exceeds 2/(2+n) = "
            << util::format_double(workload::crossover_write_rate(n), 3)
            << ".\n";
  return 0;
}
