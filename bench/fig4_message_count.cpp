// Experiment E1 — reproduces Figure 4 of the paper:
// message count as a function of the write rate w_rate = w/(w+r) for n = 10
// sites and replication factors p in {1, 3, 5, 7, 10} (p = 10 is full
// replication). The paper's analytic prediction (p*w + 2*r*(n-p)/n messages
// against n*w for full replication) is printed next to the counts measured
// from the implemented Opt-Track protocol, and the crossover write rate
// 2/(2+n) is verified empirically.
//
//   build/bench/fig4_message_count [--quick] [--out=...] [--seed=N]
#include "bench_common.hpp"

#include <iostream>
#include <vector>

using namespace ccpr;

int main(int argc, char** argv) {
  const auto args =
      bench::Args::parse(argc, argv, "fig4_message_count", 4242);
  bench::print_header(
      "E1 fig4_message_count", "paper Fig. 4",
      "Messages per run vs w_rate, n=10, q=100, 500 ops/site (Opt-Track).\n"
      "sim = measured transport messages; pred = paper formula\n"
      "(pred charges a write p messages; the implementation does not send\n"
      "to itself, so sim is lower by exactly the local-replica hit rate).");
  bench::JsonReporter report("fig4_message_count", args);

  const std::uint32_t n = 10;
  const std::vector<std::uint32_t> ps{1, 3, 5, 7, 10};
  const std::uint64_t ops_per_site = args.quick ? 200 : 500;
  const double total_ops = static_cast<double>(ops_per_site) * n;
  const std::vector<double> w_rates = [&] {
    std::vector<double> out;
    if (args.quick) {
      out = {0.2, 0.5, 0.8};
    } else {
      for (double w = 0.05; w < 1.0; w += 0.05) out.push_back(w);
    }
    return out;
  }();

  std::vector<std::string> headers{"w_rate"};
  for (const auto p : ps) {
    headers.push_back("sim p=" + std::to_string(p));
    headers.push_back("pred p=" + std::to_string(p));
  }
  util::Table table(headers);

  // Track the empirical crossover: smallest w_rate where p=3 beats full.
  double measured_crossover = -1.0;

  for (const double w_rate : w_rates) {
    table.row();
    table.cell(w_rate, 2);
    std::uint64_t sim_p3 = 0, sim_full = 0;
    for (const auto p : ps) {
      bench::RunConfig cfg;
      cfg.alg = causal::Algorithm::kOptTrack;
      cfg.n = n;
      cfg.q = 100;
      cfg.p = p;
      cfg.workload.ops_per_site = ops_per_site;
      cfg.workload.write_rate = w_rate;
      cfg.workload.value_bytes = 8;
      cfg.workload.seed = args.seed;
      auto result = bench::run_workload(std::move(cfg));
      const std::uint64_t sim = result.metrics.messages_total();
      const double writes = w_rate * total_ops;
      const double reads = total_ops - writes;
      const double pred =
          p == n ? workload::predicted_messages_full(n, writes)
                 : workload::predicted_messages_partial(n, p, writes, reads);
      table.cell(sim);
      table.cell(pred, 0);
      report.add_row({{"w_rate", w_rate},
                      {"p", p},
                      {"messages", sim},
                      {"predicted", pred}});
      if (p == 3) sim_p3 = sim;
      if (p == n) sim_full = sim;
    }
    if (measured_crossover < 0 && sim_p3 < sim_full) {
      measured_crossover = w_rate;
    }
  }

  table.print(std::cout);
  std::cout << "\npaper crossover (p<n wins when w_rate > 2/(2+n)): "
            << util::format_double(workload::crossover_write_rate(n), 3)
            << "\nmeasured crossover (first w_rate where p=3 < p=10): "
            << util::format_double(measured_crossover, 2) << "\n";
  report.extra("measured_crossover") = measured_crossover;
  return report.write() ? 0 : 1;
}
