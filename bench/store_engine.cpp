// Value-store engine q-sweep: MapEngine vs CompactEngine at the key counts
// the paper's partial-replication regime implies (q up to 10^6), across
// value sizes from fully-inlined 16 B to out-of-line 4 KiB blobs.
//
//   build/bench/store_engine [--quick] [--out=BENCH_store_engine.json]
//                            [--seed=N]
//
// For every (engine, q, value_bytes) cell the bench loads q keys, then runs
// a seeded read loop, and reports:
//
//   * put/get throughput (ops/s) and per-get latency p50/p99,
//   * resident bytes per key (the engine's own stats() estimate — the
//     number the compact engine exists to shrink),
//   * borrow-get vs copy-get throughput: the delta the const Value&
//     read-path fix buys over the old copy-out accessors,
//   * index health (mean probe length, slot count).
//
// Get latency is timed in NANOSECONDS over batches of 32 finds (one find is
// tens of ns — far below the ~20-30 ns cost of reading steady_clock, so
// per-op stamping would measure the timer, and recording microseconds
// quantized every sub-µs percentile to exactly 1.000). Keys for a batch are
// drawn before its timer starts; each histogram sample is the batch's
// per-op mean in ns, reported as fractional microseconds.
//
// Cells whose raw payload exceeds kMaxCellBytes are skipped (and listed in
// the JSON) so the full sweep stays runnable on CI machines; --quick
// trims the grid to the cells CI asserts on (q=10^6 @ 16 B must show the
// compact engine >= 2x denser than the map) plus one small row per size.
//
// Output is one JSON document, BENCH_store_engine.json by default — one of
// the repo's BENCH_*.json perf-trajectory snapshots.
#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "store/engine/value_engine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace ccpr;

namespace {

constexpr std::uint64_t kMaxCellBytes = 256ull << 20;  // raw payload cap
constexpr std::uint32_t kLatencyBatch = 32;            // finds per timestamp

struct CellResult {
  store::EngineKind engine;
  std::uint32_t q = 0;
  std::uint32_t value_bytes = 0;
  double put_ops_per_s = 0.0;
  double get_ops_per_s = 0.0;
  double get_p50_us = 0.0;
  double get_p99_us = 0.0;
  double copy_get_ops_per_s = 0.0;
  double borrow_get_ops_per_s = 0.0;
  std::uint64_t resident_bytes = 0;
  double resident_bytes_per_key = 0.0;
  double mean_probe = 0.0;
  std::uint64_t index_slots = 0;
};

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic value payload for key x: size bytes, content varies per
/// key so arena records are not trivially compressible/self-similar.
std::string payload_for(causal::VarId x, std::uint32_t size) {
  std::string data(size, 'x');
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>('a' + ((x * 131 + i * 31) & 15));
  }
  return data;
}

CellResult run_cell(store::EngineKind kind, std::uint32_t q,
                    std::uint32_t value_bytes, std::uint32_t get_ops,
                    std::uint64_t seed) {
  store::EngineOptions opts;
  opts.kind = kind;
  auto engine = store::make_engine(opts);

  CellResult r;
  r.engine = kind;
  r.q = q;
  r.value_bytes = value_bytes;

  // ---- load phase: one put per key, engine-timed in bulk ----
  const double put_t0 = now_s();
  for (causal::VarId x = 0; x < q; ++x) {
    causal::Value v;
    v.id = causal::WriteId{0, x + 1};
    v.lamport = x + 1;
    v.data = payload_for(x, value_bytes);
    engine->put(x, std::move(v));
    if ((x & 0x3ff) == 0) engine->maintain();
  }
  engine->maintain();
  r.put_ops_per_s = static_cast<double>(q) / (now_s() - put_t0);

  // ---- read phase: seeded uniform gets, batched-ns latency ----
  util::Rng rng(seed + q + value_bytes);
  util::Histogram lat_ns;
  volatile std::uint64_t sink = 0;  // keep the borrow observable
  causal::VarId batch_keys[kLatencyBatch];
  const std::uint32_t batches = get_ops / kLatencyBatch;
  const double get_t0 = now_s();
  for (std::uint32_t b = 0; b < batches; ++b) {
    // Key selection happens outside the timed window: rng cost is not the
    // engine's lookup cost.
    for (std::uint32_t i = 0; i < kLatencyBatch; ++i) {
      batch_keys[i] = static_cast<causal::VarId>(rng.below(q));
    }
    const auto b0 = std::chrono::steady_clock::now();
    for (std::uint32_t i = 0; i < kLatencyBatch; ++i) {
      const causal::Value* v = engine->find(batch_keys[i]);
      sink += v->lamport;
    }
    const auto b1 = std::chrono::steady_clock::now();
    lat_ns.add(std::chrono::duration<double, std::nano>(b1 - b0).count() /
               static_cast<double>(kLatencyBatch));
  }
  const double get_dt = now_s() - get_t0;
  r.get_ops_per_s =
      static_cast<double>(batches) * kLatencyBatch / get_dt;
  r.get_p50_us = lat_ns.percentile(0.5) / 1000.0;
  r.get_p99_us = lat_ns.percentile(0.99) / 1000.0;

  // ---- accessor-fix measurement: copy-out get vs borrowed get ----
  // The copy loop materializes each value into a caller-owned string (what
  // the pre-fix read path did on every hop); the borrow loop touches the
  // value in place through the const Value* the engine hands out.
  const std::uint32_t acc_ops = get_ops;
  std::string copy_buf;
  const double copy_t0 = now_s();
  for (std::uint32_t i = 0; i < acc_ops; ++i) {
    const auto x = static_cast<causal::VarId>(rng.below(q));
    copy_buf.assign(engine->find(x)->data);
    sink += copy_buf.size();
  }
  r.copy_get_ops_per_s = static_cast<double>(acc_ops) / (now_s() - copy_t0);
  const double borrow_t0 = now_s();
  for (std::uint32_t i = 0; i < acc_ops; ++i) {
    const auto x = static_cast<causal::VarId>(rng.below(q));
    const causal::Value* v = engine->find(x);
    sink += v->data.size() + static_cast<std::size_t>(v->data[0]);
  }
  r.borrow_get_ops_per_s =
      static_cast<double>(acc_ops) / (now_s() - borrow_t0);

  const auto stats = engine->stats();
  r.resident_bytes = stats.resident_bytes;
  r.resident_bytes_per_key =
      static_cast<double>(stats.resident_bytes) / static_cast<double>(q);
  r.mean_probe = stats.mean_probe_length();
  r.index_slots = stats.index_slots;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, "store_engine", 0x5eed,
                                       "BENCH_store_engine.json");
  bench::JsonReporter report("store_engine", args);

  const std::uint32_t qs[] = {10'000, 100'000, 1'000'000};
  const std::uint32_t sizes[] = {16, 256, 4096};

  std::size_t skipped = 0;
  for (const std::uint32_t q : qs) {
    for (const std::uint32_t size : sizes) {
      const std::uint64_t raw =
          static_cast<std::uint64_t>(q) * static_cast<std::uint64_t>(size);
      if (raw > kMaxCellBytes) {
        std::printf("skip q=%u value_bytes=%u (raw payload %llu MB > cap)\n",
                    q, size,
                    static_cast<unsigned long long>(raw >> 20));
        report.add_skipped({{"q", q}, {"value_bytes", size}});
        ++skipped;
        continue;
      }
      // Quick mode: the q=10^6 @ 16 B cell CI asserts on, plus the small-q
      // row so every value size still gets one sample.
      const bool quick_keep =
          q == 10'000 || (size == 16 && q == 1'000'000);
      if (args.quick && !quick_keep) continue;
      const std::uint32_t get_ops = std::min<std::uint32_t>(q, 200'000);
      for (const auto kind :
           {store::EngineKind::kMap, store::EngineKind::kCompact}) {
        const auto r = run_cell(kind, q, size, get_ops, args.seed);
        std::printf(
            "%-7s q=%-8u vsize=%-5u put=%.2fM/s get=%.2fM/s p50=%.3fus "
            "p99=%.3fus resident/key=%.1fB probe=%.2f copy=%.2fM/s "
            "borrow=%.2fM/s\n",
            store::engine_kind_token(kind), q, size,
            r.put_ops_per_s / 1e6, r.get_ops_per_s / 1e6, r.get_p50_us,
            r.get_p99_us, r.resident_bytes_per_key, r.mean_probe,
            r.copy_get_ops_per_s / 1e6, r.borrow_get_ops_per_s / 1e6);
        report.add_row({{"engine", store::engine_kind_token(kind)},
                        {"q", r.q},
                        {"value_bytes", r.value_bytes},
                        {"put_ops_per_s", r.put_ops_per_s},
                        {"get_ops_per_s", r.get_ops_per_s},
                        {"get_p50_us", r.get_p50_us},
                        {"get_p99_us", r.get_p99_us},
                        {"copy_get_ops_per_s", r.copy_get_ops_per_s},
                        {"borrow_get_ops_per_s", r.borrow_get_ops_per_s},
                        {"resident_bytes", r.resident_bytes},
                        {"resident_bytes_per_key", r.resident_bytes_per_key},
                        {"mean_probe", r.mean_probe},
                        {"index_slots", r.index_slots}});
      }
    }
  }

  if (!report.write()) return 1;
  std::printf("%zu cells, %zu skipped\n", report.rows(), skipped);
  return 0;
}
