// Experiment E4 — Table I, row "Time complexity" (google-benchmark):
//   write: Full-Track O(n^2), Opt-Track O(n^2 p) (O(n^2) distributed mode),
//          Opt-Track-CRP O(n), OptP O(n)
//   read:  Full-Track/Opt-Track O(n^2), Opt-Track-CRP O(1)*, OptP O(n)
// Measures the CPU cost of one protocol write / local read (including
// serialization) as n grows. The scheduler is drained outside the timed
// region so only the operation's own processing is measured.
#include <benchmark/benchmark.h>

#include <memory>

#include "causal/sim_cluster.hpp"
#include "sim/latency.hpp"

using namespace ccpr;
using causal::Algorithm;

namespace {

std::unique_ptr<causal::SimCluster> make_cluster(Algorithm alg,
                                                 std::uint32_t n,
                                                 std::uint32_t p) {
  causal::SimCluster::Options opts;
  opts.latency = std::make_unique<sim::ConstantLatency>(10);
  opts.record_history = false;
  return std::make_unique<causal::SimCluster>(
      alg, causal::ReplicaMap::even(n, 4 * n, p), std::move(opts));
}

std::uint32_t pick_p(Algorithm alg, std::uint32_t n) {
  return (alg == Algorithm::kFullTrack || alg == Algorithm::kOptTrack)
             ? std::min(3u, n)
             : n;
}

void BM_Write(benchmark::State& state, Algorithm alg) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto cluster = make_cluster(alg, n, pick_p(alg, n));
  const std::uint32_t q = 4 * n;
  std::uint32_t x = 0;
  int since_drain = 0;
  for (auto _ : state) {
    cluster->site(0).write(x, "payload-12345678");
    x = (x + 1) % q;
    if (++since_drain == 256) {
      state.PauseTiming();
      cluster->run();  // deliver queued updates outside the timed region
      state.ResumeTiming();
      since_drain = 0;
    }
  }
  state.SetLabel(causal::algorithm_name(alg));
}

void BM_LocalRead(benchmark::State& state, Algorithm alg) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto cluster = make_cluster(alg, n, pick_p(alg, n));
  // Prefill: every site writes its local vars once, everything delivered.
  for (causal::SiteId s = 0; s < n; ++s) {
    for (const auto v : cluster->replica_map().vars_at(s)) {
      cluster->site(s).write(v, "prefill");
    }
  }
  cluster->run();
  const auto local = cluster->replica_map().vars_at(0);
  std::size_t i = 0;
  for (auto _ : state) {
    cluster->site(0).read(local[i % local.size()],
                          [](const causal::Value&) {});
    ++i;
  }
  state.SetLabel(causal::algorithm_name(alg));
}

}  // namespace

BENCHMARK_CAPTURE(BM_Write, full_track, Algorithm::kFullTrack)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_Write, opt_track, Algorithm::kOptTrack)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_Write, opt_track_crp, Algorithm::kOptTrackCRP)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_Write, optp, Algorithm::kOptP)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32);

BENCHMARK_CAPTURE(BM_LocalRead, full_track, Algorithm::kFullTrack)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_LocalRead, opt_track, Algorithm::kOptTrack)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_LocalRead, opt_track_crp, Algorithm::kOptTrackCRP)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_LocalRead, optp, Algorithm::kOptP)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32);

BENCHMARK_MAIN();
