// Experiment E4 — Table I, row "Time complexity" (google-benchmark):
//   write: Full-Track O(n^2), Opt-Track O(n^2 p) (O(n^2) distributed mode),
//          Opt-Track-CRP O(n), OptP O(n)
//   read:  Full-Track/Opt-Track O(n^2), Opt-Track-CRP O(1)*, OptP O(n)
// Measures the CPU cost of one protocol write / local read (including
// serialization) as n grows. The scheduler is drained outside the timed
// region so only the operation's own processing is measured.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "causal/sim_cluster.hpp"
#include "sim/latency.hpp"

using namespace ccpr;
using causal::Algorithm;

namespace {

std::unique_ptr<causal::SimCluster> make_cluster(Algorithm alg,
                                                 std::uint32_t n,
                                                 std::uint32_t p) {
  causal::SimCluster::Options opts;
  opts.latency = std::make_unique<sim::ConstantLatency>(10);
  opts.record_history = false;
  return std::make_unique<causal::SimCluster>(
      alg, causal::ReplicaMap::even(n, 4 * n, p), std::move(opts));
}

std::uint32_t pick_p(Algorithm alg, std::uint32_t n) {
  return (alg == Algorithm::kFullTrack || alg == Algorithm::kOptTrack)
             ? std::min(3u, n)
             : n;
}

void BM_Write(benchmark::State& state, Algorithm alg) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto cluster = make_cluster(alg, n, pick_p(alg, n));
  const std::uint32_t q = 4 * n;
  std::uint32_t x = 0;
  int since_drain = 0;
  for (auto _ : state) {
    cluster->site(0).write(x, "payload-12345678");
    x = (x + 1) % q;
    if (++since_drain == 256) {
      state.PauseTiming();
      cluster->run();  // deliver queued updates outside the timed region
      state.ResumeTiming();
      since_drain = 0;
    }
  }
  state.SetLabel(causal::algorithm_name(alg));
}

void BM_LocalRead(benchmark::State& state, Algorithm alg) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto cluster = make_cluster(alg, n, pick_p(alg, n));
  // Prefill: every site writes its local vars once, everything delivered.
  for (causal::SiteId s = 0; s < n; ++s) {
    for (const auto v : cluster->replica_map().vars_at(s)) {
      cluster->site(s).write(v, "prefill");
    }
  }
  cluster->run();
  const auto local = cluster->replica_map().vars_at(0);
  std::size_t i = 0;
  for (auto _ : state) {
    cluster->site(0).read(local[i % local.size()],
                          [](const causal::Value&) {});
    ++i;
  }
  state.SetLabel(causal::algorithm_name(alg));
}

}  // namespace

BENCHMARK_CAPTURE(BM_Write, full_track, Algorithm::kFullTrack)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_Write, opt_track, Algorithm::kOptTrack)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_Write, opt_track_crp, Algorithm::kOptTrackCRP)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_Write, optp, Algorithm::kOptP)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32);

BENCHMARK_CAPTURE(BM_LocalRead, full_track, Algorithm::kFullTrack)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_LocalRead, opt_track, Algorithm::kOptTrack)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_LocalRead, opt_track_crp, Algorithm::kOptTrackCRP)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_LocalRead, optp, Algorithm::kOptP)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32);

namespace {

/// Console output as usual, plus one JSON row per finished benchmark so the
/// sweep harness can snapshot/aggregate this binary like every other bench.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(bench::JsonReporter* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      out_->add_row({{"name", run.benchmark_name()},
                     {"real_ns_per_op", run.GetAdjustedRealTime()},
                     {"cpu_ns_per_op", run.GetAdjustedCPUTime()},
                     {"iterations", run.iterations},
                     {"label", run.report_label}});
    }
  }

 private:
  bench::JsonReporter* out_;
};

}  // namespace

// Custom BENCHMARK_MAIN: peels off the shared bench flags (--quick, --out,
// --seed) before google-benchmark sees argv, maps --quick onto a short
// --benchmark_min_time, and exits 2 on flags neither layer recognizes.
int main(int argc, char** argv) {
  bench::Args args;
  args.out = "";  // stdout-only unless --out= is given
  std::vector<char*> bench_argv{argv[0]};
  std::vector<std::string> owned;
  owned.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick" || arg == "--quick=true") {
      args.quick = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      args.out = arg.substr(6);
    } else if (arg.rfind("--seed=", 0) == 0) {
      // Accepted for CLI uniformity; google-benchmark runs are not seeded.
      args.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else {
      owned.push_back(arg);
      bench_argv.push_back(owned.back().data());
    }
  }
  if (args.quick) {
    owned.push_back("--benchmark_min_time=0.01");
    bench_argv.push_back(owned.back().data());
  }

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 2;
  }

  bench::JsonReporter report("table1_op_time", args);
  CaptureReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return report.write() ? 0 : 1;
}
