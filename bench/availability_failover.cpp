// Experiment A3/§V — availability under replica failure:
// "If a non-local read does not respond in a timeout period, then a
// secondary process is contacted. This provides better availability in
// light of the CAP Theorem." Measures remote-read latency with the
// pre-designated replica failed, as a function of the failover timeout.
#include "bench_common.hpp"

#include <iostream>
#include <memory>

using namespace ccpr;

namespace {

struct Result {
  double p50_us, p99_us;
  std::uint64_t retries;
  std::uint64_t completed;
};

Result run_with_failure(sim::SimTime timeout_us) {
  // Var space replicated at pairs of 6 sites; crash one replica-heavy site
  // and read from everywhere.
  const std::uint32_t n = 6, q = 30;
  causal::SimCluster::Options opts;
  opts.latency = std::make_unique<sim::UniformLatency>(5'000, 25'000);
  opts.latency_seed = 8;
  opts.record_history = false;
  opts.protocol.fetch_timeout_us = timeout_us;
  causal::SimCluster cluster(causal::Algorithm::kOptTrack,
                             causal::ReplicaMap::even(n, q, 2),
                             std::move(opts));
  // Seed every variable, then fail site 1.
  for (causal::VarId x = 0; x < q; ++x) {
    const causal::SiteId writer = cluster.replica_map().replicas(x).front();
    cluster.write(writer, x, "seed");
  }
  cluster.run();
  cluster.crash_site(1);

  // Remote reads from sites that do not replicate the variable. Reads whose
  // pre-designated target is the dead site need the failover to complete.
  std::uint64_t issued = 0;
  for (int round = 0; round < 10; ++round) {
    for (causal::VarId x = 0; x < q; ++x) {
      for (causal::SiteId s = 0; s < n; ++s) {
        if (cluster.replica_map().replicated_at(x, s) || s == 1) continue;
        if (cluster.replica_map().fetch_target(x, s) != 1) continue;
        cluster.read_async(s, x, [](const causal::Value&) {});
        ++issued;
      }
    }
  }
  cluster.run();
  const auto m = cluster.metrics();
  return Result{m.read_latency_us.percentile(0.5),
                m.read_latency_us.percentile(0.99), m.fetch_retries,
                m.read_latency_us.count()};
}

}  // namespace

int main() {
  bench::print_header(
      "A3 availability_failover", "paper §V availability discussion",
      "Remote reads whose pre-designated replica has failed, n=6, p=2,\n"
      "uniform 5-25ms latency. Sweeps the failover timeout.");

  util::Table table({"timeout (ms)", "reads completed", "retries",
                     "read p50 (ms)", "read p99 (ms)"});
  for (const sim::SimTime timeout : {30'000, 60'000, 120'000, 240'000}) {
    const Result r = run_with_failure(timeout);
    table.row();
    table.cell(static_cast<double>(timeout) / 1000.0, 0);
    table.cell(r.completed);
    table.cell(r.retries);
    table.cell(r.p50_us / 1000.0, 1);
    table.cell(r.p99_us / 1000.0, 1);
  }
  table.print(std::cout);
  std::cout
      << "\nExpected shape: every read completes at every timeout (the\n"
         "secondary replica always answers); latency is timeout + one\n"
         "round trip, so shorter timeouts buy availability latency down to\n"
         "the WAN floor. Without the §V fallback these reads would hang\n"
         "forever.\n";
  return 0;
}
