// Experiment A3/§V — availability under replica failure:
// "If a non-local read does not respond in a timeout period, then a
// secondary process is contacted. This provides better availability in
// light of the CAP Theorem." Measures remote-read latency with the
// pre-designated replica failed, as a function of the failover timeout.
// The second section (E9b) replays the same question on the real TCP
// runtime: an in-process 3-site cluster, one site partitioned by chaos
// injection, and a client session pinned to the victim — once bare, once
// with retry + failover. The delta is the availability the client
// resilience layer buys during a 1-site partition.
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "net/chaos.hpp"
#include "net/socket.hpp"
#include "server/cluster_config.hpp"
#include "server/site_server.hpp"

using namespace ccpr;

namespace {

struct Result {
  double p50_us, p99_us;
  std::uint64_t retries;
  std::uint64_t completed;
};

Result run_with_failure(sim::SimTime timeout_us, std::uint64_t seed,
                        int rounds) {
  // Var space replicated at pairs of 6 sites; crash one replica-heavy site
  // and read from everywhere.
  const std::uint32_t n = 6, q = 30;
  causal::SimCluster::Options opts;
  opts.latency = std::make_unique<sim::UniformLatency>(5'000, 25'000);
  opts.latency_seed = seed;
  opts.record_history = false;
  opts.protocol.fetch_timeout_us = timeout_us;
  causal::SimCluster cluster(causal::Algorithm::kOptTrack,
                             causal::ReplicaMap::even(n, q, 2),
                             std::move(opts));
  // Seed every variable, then fail site 1.
  for (causal::VarId x = 0; x < q; ++x) {
    const causal::SiteId writer = cluster.replica_map().replicas(x).front();
    cluster.write(writer, x, "seed");
  }
  cluster.run();
  cluster.crash_site(1);

  // Remote reads from sites that do not replicate the variable. Reads whose
  // pre-designated target is the dead site need the failover to complete.
  std::uint64_t issued = 0;
  for (int round = 0; round < rounds; ++round) {
    for (causal::VarId x = 0; x < q; ++x) {
      for (causal::SiteId s = 0; s < n; ++s) {
        if (cluster.replica_map().replicated_at(x, s) || s == 1) continue;
        if (cluster.replica_map().fetch_target(x, s) != 1) continue;
        cluster.read_async(s, x, [](const causal::Value&) {});
        ++issued;
      }
    }
  }
  cluster.run();
  const auto m = cluster.metrics();
  return Result{m.read_latency_us.percentile(0.5),
                m.read_latency_us.percentile(0.99), m.fetch_retries,
                m.read_latency_us.count()};
}

// ---- E9b: availability under a 1-site partition, TCP runtime ----

struct TcpResult {
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t failovers = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double percentile_ms(std::vector<double>& us, double p) {
  if (us.empty()) return 0.0;
  std::sort(us.begin(), us.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(us.size() - 1));
  return us[idx] / 1000.0;
}

TcpResult run_tcp_partition(bool with_failover, int rounds) {
  using namespace std::chrono_literals;
  const std::uint32_t n = 3, q = 12, p = 2;
  auto cfg = server::ClusterConfig::loopback(n, q, p, 0);
  {
    std::vector<net::Socket> held;
    for (std::uint32_t s = 0; s < 2 * n; ++s) {
      std::uint16_t port = 0;
      held.push_back(net::tcp_listen("127.0.0.1", 0, &port));
      if (s < n) {
        cfg.sites[s].peer_port = port;
      } else {
        cfg.sites[s - n].client_port = port;
      }
    }
  }
  cfg.protocol.fetch_timeout_us = 150'000;
  cfg.heartbeat_interval_us = 50'000;
  cfg.suspect_after_us = 300'000;

  std::vector<std::unique_ptr<server::SiteServer>> servers;
  for (causal::SiteId s = 0; s < n; ++s) {
    servers.push_back(std::make_unique<server::SiteServer>(cfg, s));
    if (!servers.back()->start()) {
      std::cerr << "site " << s << " failed to start\n";
      std::exit(1);
    }
  }
  const auto rmap = cfg.replica_map();

  // Seed every var at its first replica, then let propagation settle.
  {
    std::vector<std::unique_ptr<client::Client>> seeders;
    for (causal::SiteId s = 0; s < n; ++s) {
      seeders.push_back(std::make_unique<client::Client>(cfg, s));
    }
    for (causal::VarId x = 0; x < q; ++x) {
      seeders[rmap.replicas(x).front()]->put(x, "seed");
    }
    std::this_thread::sleep_for(300ms);
  }

  // Partition site 1 from both peers (one-sided rules blackhole the link
  // in both directions), then wait out the suspicion window.
  const causal::SiteId victim = 1;
  net::ChaosRule rule;
  rule.partition = true;
  servers[victim]->set_chaos(0, rule);
  servers[victim]->set_chaos(2, rule);
  std::this_thread::sleep_for(600ms);

  // A read-only session pinned to the victim sweeps the whole var space.
  TcpResult out;
  client::Client::Options copts;
  copts.connect_timeout = 1000ms;
  copts.request_timeout = 2000ms;
  copts.retry.enabled = with_failover;
  copts.retry.failover = with_failover;
  copts.retry.op_deadline = 4000ms;
  client::Client cli(cfg, victim, copts);
  std::vector<double> lat_us;
  for (int round = 0; round < rounds; ++round) {
    for (causal::VarId x = 0; x < q; ++x) {
      const auto t0 = std::chrono::steady_clock::now();
      try {
        (void)cli.get(x);
        ++out.ok;
        lat_us.push_back(static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
      } catch (const client::Error&) {
        ++out.errors;
      }
    }
  }
  out.failovers = cli.failovers();
  out.p50_ms = percentile_ms(lat_us, 0.5);
  out.p99_ms = percentile_ms(lat_us, 0.99);

  servers[victim]->clear_chaos();
  for (auto& s : servers) s->stop();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, "availability_failover", 8);
  bench::print_header(
      "A3 availability_failover", "paper §V availability discussion",
      "Remote reads whose pre-designated replica has failed, n=6, p=2,\n"
      "uniform 5-25ms latency. Sweeps the failover timeout.");
  bench::JsonReporter report("availability_failover", args);

  util::Table table({"timeout (ms)", "reads completed", "retries",
                     "read p50 (ms)", "read p99 (ms)"});
  const auto timeouts =
      args.quick ? std::vector<sim::SimTime>{60'000, 240'000}
                 : std::vector<sim::SimTime>{30'000, 60'000, 120'000,
                                             240'000};
  for (const sim::SimTime timeout : timeouts) {
    const Result r =
        run_with_failure(timeout, args.seed, args.quick ? 4 : 10);
    table.row();
    table.cell(static_cast<double>(timeout) / 1000.0, 0);
    table.cell(r.completed);
    table.cell(r.retries);
    table.cell(r.p50_us / 1000.0, 1);
    table.cell(r.p99_us / 1000.0, 1);
    report.add_row({{"section", "sim_failover"},
                    {"timeout_ms", static_cast<double>(timeout) / 1000.0},
                    {"reads_completed", r.completed},
                    {"fetch_retries", r.retries},
                    {"read_p50_ms", r.p50_us / 1000.0},
                    {"read_p99_ms", r.p99_us / 1000.0}});
  }
  table.print(std::cout);
  std::cout
      << "\nExpected shape: every read completes at every timeout (the\n"
         "secondary replica always answers); latency is timeout + one\n"
         "round trip, so shorter timeouts buy availability latency down to\n"
         "the WAN floor. Without the §V fallback these reads would hang\n"
         "forever.\n";

  bench::print_header(
      "E9b availability_failover (TCP runtime)",
      "client retry/failover under a 1-site partition",
      "In-process 3-site TCP cluster, n=3, q=12, p=2. Site 1 is fully\n"
      "partitioned via chaos injection; a read-only session pinned to it\n"
      "sweeps the var space, once bare and once with retry + failover.");

  util::Table tcp_table({"mode", "reads ok", "errors", "failovers",
                         "read p50 (ms)", "read p99 (ms)"});
  for (const bool failover : {false, true}) {
    const char* mode = failover ? "retry+failover" : "no-retry";
    if (args.quick) {
      // Wall-clock TCP section: ~2s of sleeps per mode and timing-derived
      // output; keep the quick matrix fast and deterministic.
      report.add_skipped({{"section", "tcp_partition"},
                          {"mode", mode},
                          {"reason", "quick mode skips wall-clock TCP runs"}});
      continue;
    }
    const TcpResult r = run_tcp_partition(failover, 10);
    tcp_table.row();
    tcp_table.cell(mode);
    tcp_table.cell(r.ok);
    tcp_table.cell(r.errors);
    tcp_table.cell(r.failovers);
    tcp_table.cell(r.p50_ms, 2);
    tcp_table.cell(r.p99_ms, 2);
    report.add_row({{"section", "tcp_partition"},
                    {"mode", mode},
                    {"reads_ok", r.ok},
                    {"errors", r.errors},
                    {"failovers", r.failovers},
                    {"read_p50_ms", r.p50_ms},
                    {"read_p99_ms", r.p99_ms}});
  }
  tcp_table.print(std::cout);
  std::cout
      << "\nExpected shape: without retry, every read of a var not\n"
         "replicated at the victim fails fast (kUnavailable — both of its\n"
         "replicas are suspected); with failover the session abandons the\n"
         "partitioned site after the first error and the error count drops\n"
         "to ~0, at the price of one failover handshake on the first op.\n";
  return report.write() ? 0 : 1;
}
