// Experiment E9 — §IV amortization claim (Chandra et al. adopted by the
// paper): Opt-Track's worst-case message overhead is O(n^2) but the pruning
// conditions keep the *amortized* per-message overhead at O(n) and the
// amortized space at O(pq). Long steady-state runs over an n sweep, plus a
// per-phase time series showing the overhead does not creep upward.
#include "bench_common.hpp"

#include <iostream>

using namespace ccpr;

int main() {
  bench::print_header(
      "E9 metadata_amortized", "paper §IV amortized complexity",
      "Opt-Track control bytes per message and mean log entries vs n\n"
      "(q=8n, p=3, w_rate=0.4, 600 ops/site). A linear-in-n column ratio\n"
      "(~2x per doubling) confirms the O(n) amortized bound; Full-Track's\n"
      "~4x confirms O(n^2).");

  util::Table table({"n", "OptTrack B/msg", "x", "OptTrack log mean",
                     "OptTrack spaceB mean", "FullTrack B/msg", "x"});
  double prev_ot = 0.0, prev_ft = 0.0;
  for (const std::uint32_t n : {4u, 8u, 16u, 32u}) {
    bench::RunConfig ot;
    ot.alg = causal::Algorithm::kOptTrack;
    ot.n = n;
    ot.q = 8 * n;
    ot.p = 3;
    ot.workload.ops_per_site = 600;
    ot.workload.write_rate = 0.4;
    ot.workload.seed = 9;
    const auto rot = bench::run_workload(std::move(ot));

    bench::RunConfig ft = {};
    ft.alg = causal::Algorithm::kFullTrack;
    ft.n = n;
    ft.q = 8 * n;
    ft.p = 3;
    ft.workload.ops_per_site = 600;
    ft.workload.write_rate = 0.4;
    ft.workload.seed = 9;
    const auto rft = bench::run_workload(std::move(ft));

    const double ot_bpm = rot.metrics.control_bytes_per_message();
    const double ft_bpm = rft.metrics.control_bytes_per_message();
    table.row();
    table.cell(static_cast<std::uint64_t>(n));
    table.cell(ot_bpm, 1);
    if (prev_ot > 0) table.cell(ot_bpm / prev_ot, 2); else table.cell("-");
    table.cell(rot.metrics.log_entries.samples().mean(), 2);
    table.cell(rot.metrics.meta_state_bytes.samples().mean(), 0);
    table.cell(ft_bpm, 1);
    if (prev_ft > 0) table.cell(ft_bpm / prev_ft, 2); else table.cell("-");
    prev_ot = ot_bpm;
    prev_ft = ft_bpm;
  }
  table.print(std::cout);

  // Time series: per-quarter control bytes/message over a long run shows
  // the steady state (no unbounded log growth).
  std::cout << "\n-- steady state: per-phase overhead, n=16, 4 phases --\n";
  util::Table series({"phase", "ctrl bytes/msg", "mean log entries"});
  for (int phase = 0; phase < 4; ++phase) {
    bench::RunConfig cfg;
    cfg.alg = causal::Algorithm::kOptTrack;
    cfg.n = 16;
    cfg.q = 128;
    cfg.p = 3;
    cfg.workload.ops_per_site =
static_cast<std::uint64_t>(200) * static_cast<std::uint64_t>(phase + 1);
    cfg.workload.write_rate = 0.4;
    cfg.workload.seed = 10;
    const auto r = bench::run_workload(std::move(cfg));
    series.row();
    series.cell(static_cast<std::uint64_t>(
static_cast<std::uint64_t>(200) * static_cast<std::uint64_t>(phase + 1)));
    series.cell(r.metrics.control_bytes_per_message(), 1);
    series.cell(r.metrics.log_entries.samples().mean(), 2);
  }
  series.print(std::cout);
  std::cout << "\nExpected shape: both columns flat as the run length grows\n"
               "(prefix-independent steady state).\n";
  return 0;
}
