// Experiment E9 — §IV amortization claim (Chandra et al. adopted by the
// paper): Opt-Track's worst-case message overhead is O(n^2) but the pruning
// conditions keep the *amortized* per-message overhead at O(n) and the
// amortized space at O(pq). Long steady-state runs over an n sweep, plus a
// per-phase time series showing the overhead does not creep upward.
#include "bench_common.hpp"

#include <iostream>

using namespace ccpr;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, "metadata_amortized", 9);
  bench::print_header(
      "E9 metadata_amortized", "paper §IV amortized complexity",
      "Opt-Track control bytes per message and mean log entries vs n\n"
      "(q=8n, p=3, w_rate=0.4, 600 ops/site). A linear-in-n column ratio\n"
      "(~2x per doubling) confirms the O(n) amortized bound; Full-Track's\n"
      "~4x confirms O(n^2).");
  bench::JsonReporter report("metadata_amortized", args);

  const std::uint64_t ops_per_site = args.quick ? 250 : 600;
  const auto n_grid = args.quick ? std::vector<std::uint32_t>{4u, 8u, 16u}
                                 : std::vector<std::uint32_t>{4u, 8u, 16u,
                                                              32u};
  util::Table table({"n", "OptTrack B/msg", "x", "OptTrack log mean",
                     "OptTrack spaceB mean", "FullTrack B/msg", "x"});
  double prev_ot = 0.0, prev_ft = 0.0;
  for (const std::uint32_t n : n_grid) {
    bench::RunConfig ot;
    ot.alg = causal::Algorithm::kOptTrack;
    ot.n = n;
    ot.q = 8 * n;
    ot.p = 3;
    ot.workload.ops_per_site = ops_per_site;
    ot.workload.write_rate = 0.4;
    ot.workload.seed = args.seed;
    const auto rot = bench::run_workload(std::move(ot));

    bench::RunConfig ft = {};
    ft.alg = causal::Algorithm::kFullTrack;
    ft.n = n;
    ft.q = 8 * n;
    ft.p = 3;
    ft.workload.ops_per_site = ops_per_site;
    ft.workload.write_rate = 0.4;
    ft.workload.seed = args.seed;
    const auto rft = bench::run_workload(std::move(ft));

    const double ot_bpm = rot.metrics.control_bytes_per_message();
    const double ft_bpm = rft.metrics.control_bytes_per_message();
    table.row();
    table.cell(static_cast<std::uint64_t>(n));
    table.cell(ot_bpm, 1);
    if (prev_ot > 0) table.cell(ot_bpm / prev_ot, 2); else table.cell("-");
    table.cell(rot.metrics.log_entries.samples().mean(), 2);
    table.cell(rot.metrics.meta_state_bytes.samples().mean(), 0);
    table.cell(ft_bpm, 1);
    if (prev_ft > 0) table.cell(ft_bpm / prev_ft, 2); else table.cell("-");
    report.add_row(
        {{"section", "n_sweep"},
         {"n", n},
         {"opt_track_bytes_per_msg", ot_bpm},
         {"opt_track_mean_log_entries",
          rot.metrics.log_entries.samples().mean()},
         {"opt_track_mean_space_bytes",
          rot.metrics.meta_state_bytes.samples().mean()},
         {"full_track_bytes_per_msg", ft_bpm}});
    prev_ot = ot_bpm;
    prev_ft = ft_bpm;
  }
  table.print(std::cout);

  // Time series: per-quarter control bytes/message over a long run shows
  // the steady state (no unbounded log growth).
  std::cout << "\n-- steady state: per-phase overhead, n=16, 4 phases --\n";
  util::Table series({"phase", "ctrl bytes/msg", "mean log entries"});
  const int phases = args.quick ? 2 : 4;
  const std::uint64_t phase_step = args.quick ? 100 : 200;
  for (int phase = 0; phase < phases; ++phase) {
    bench::RunConfig cfg;
    cfg.alg = causal::Algorithm::kOptTrack;
    cfg.n = 16;
    cfg.q = 128;
    cfg.p = 3;
    cfg.workload.ops_per_site =
        phase_step * static_cast<std::uint64_t>(phase + 1);
    cfg.workload.write_rate = 0.4;
    cfg.workload.seed = args.seed + 1;
    const auto r = bench::run_workload(std::move(cfg));
    series.row();
    series.cell(phase_step * static_cast<std::uint64_t>(phase + 1));
    series.cell(r.metrics.control_bytes_per_message(), 1);
    series.cell(r.metrics.log_entries.samples().mean(), 2);
    report.add_row({{"section", "phase_series"},
                    {"n", 16},
                    {"ops_per_site",
                     phase_step * static_cast<std::uint64_t>(phase + 1)},
                    {"ctrl_bytes_per_msg",
                     r.metrics.control_bytes_per_message()},
                    {"mean_log_entries",
                     r.metrics.log_entries.samples().mean()}});
  }
  series.print(std::cout);
  std::cout << "\nExpected shape: both columns flat as the run length grows\n"
               "(prefix-independent steady state).\n";
  return report.write() ? 0 : 1;
}
