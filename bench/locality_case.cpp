// Experiment E8 + ablation A2 — the paper's §I motivating scenario: user
// data pinned to its home region. Compares locality-aware partial
// replication against full replication on the social-network workload
// (messages, bytes, read latency), then sweeps the replication factor p on
// a locality-controlled uniform workload.
#include "bench_common.hpp"

#include <iostream>
#include <memory>

#include "workload/hdfs.hpp"
#include "workload/social.hpp"

using namespace ccpr;

namespace {

struct SocialRow {
  std::uint64_t messages;
  std::uint64_t bytes;
  double remote_read_frac;
  double read_p50_us;
  double read_p99_us;
};

SocialRow run_social(std::uint32_t replicas_per_user) {
  workload::SocialSpec spec;
  spec.regions = 2;
  spec.sites_per_region = 3;
  spec.users = 120;
  spec.replicas_per_user = replicas_per_user;
  spec.ops_per_site = 600;
  spec.write_rate = 0.25;
  spec.follow_local_prob = 0.9;
  spec.value_bytes = 256;
  spec.seed = 2026;
  auto sw = make_social_workload(spec);

  causal::SimCluster::Options opts;
  // Two regions ~ Chicago + US West: 2ms within a region, 50ms across.
  opts.latency =
      sim::GeoLatency::two_tier(sw.region_of_site, 2'000, 50'000, 0.1);
  opts.latency_seed = 5;
  opts.mean_think_us = 2'000;
  opts.record_history = false;

  const causal::ReplicaMap rmap = sw.rmap;
  causal::SimCluster cluster(causal::Algorithm::kOptTrack, std::move(sw.rmap),
                             std::move(opts));
  cluster.run_program(sw.program);
  const auto m = cluster.metrics();
  return SocialRow{
      m.messages_total(), m.bytes_total(),
      m.reads ? static_cast<double>(m.remote_reads) /
                    static_cast<double>(m.reads)
              : 0.0,
      m.read_latency_us.percentile(0.5), m.read_latency_us.percentile(0.99)};
}

SocialRow run_social_full() {
  // Same workload but every wall replicated at all 6 sites.
  workload::SocialSpec spec;
  spec.regions = 2;
  spec.sites_per_region = 3;
  spec.users = 120;
  spec.replicas_per_user = 3;  // ignored below
  spec.ops_per_site = 600;
  spec.write_rate = 0.25;
  spec.follow_local_prob = 0.9;
  spec.value_bytes = 256;
  spec.seed = 2026;
  auto sw = make_social_workload(spec);

  causal::SimCluster::Options opts;
  opts.latency =
      sim::GeoLatency::two_tier(sw.region_of_site, 2'000, 50'000, 0.1);
  opts.latency_seed = 5;
  opts.mean_think_us = 2'000;
  opts.record_history = false;

  causal::SimCluster cluster(
      causal::Algorithm::kOptTrack,
      causal::ReplicaMap::full(sw.rmap.sites(), sw.rmap.vars()),
      std::move(opts));
  cluster.run_program(sw.program);
  const auto m = cluster.metrics();
  return SocialRow{
      m.messages_total(), m.bytes_total(),
      m.reads ? static_cast<double>(m.remote_reads) /
                    static_cast<double>(m.reads)
              : 0.0,
      m.read_latency_us.percentile(0.5), m.read_latency_us.percentile(0.99)};
}

}  // namespace

int main() {
  bench::print_header(
      "E8 locality_case", "paper §I case for partial replication + §V",
      "Social-network workload: 2 regions x 3 sites, 120 users, walls\n"
      "pinned to the home region; 90% of reads are regional; 256B posts.");

  {
    util::Table table({"placement", "messages", "KB total", "remote reads",
                       "read p50 us", "read p99 us"});
    for (const std::uint32_t p : {1u, 2u, 3u}) {
      const auto row = run_social(p);
      table.row();
      table.cell("home-region p=" + std::to_string(p));
      table.cell(row.messages);
      table.cell(static_cast<double>(row.bytes) / 1024.0, 0);
      table.cell(row.remote_read_frac, 3);
      table.cell(row.read_p50_us, 0);
      table.cell(row.read_p99_us, 0);
    }
    const auto full = run_social_full();
    table.row();
    table.cell("full (p=6)");
    table.cell(full.messages);
    table.cell(static_cast<double>(full.bytes) / 1024.0, 0);
    table.cell(full.remote_read_frac, 3);
    table.cell(full.read_p50_us, 0);
    table.cell(full.read_p99_us, 0);
    table.print(std::cout);
    std::cout
        << "\nExpected shape: home-region placement needs a fraction of the\n"
           "messages/bytes of full replication while read latency stays\n"
           "near-local (most reads are regional); the residual p99 is the\n"
           "cross-region follower traffic the paper's §I accepts.\n";
  }

  std::cout << "\n-- HDFS/MapReduce data-locality scenario (paper §V) --\n";
  {
    util::Table table({"locality", "messages", "remote reads", "reads",
                       "partial msgs vs full"});
    for (const double locality : {0.5, 0.75, 0.95}) {
      workload::HdfsSpec spec;
      spec.sites = 8;
      spec.blocks = 64;
      spec.replication = 3;
      spec.tasks_per_site = 60;
      spec.locality = locality;
      spec.seed = 7;
      auto w = workload::make_hdfs_workload(spec);
      const auto q = w.rmap.vars();

      causal::SimCluster::Options popts;
      popts.latency = std::make_unique<sim::UniformLatency>(2'000, 15'000);
      popts.record_history = false;
      causal::SimCluster partial(causal::Algorithm::kOptTrack,
                                 std::move(w.rmap), std::move(popts));
      partial.run_program(w.program);

      causal::SimCluster::Options fopts;
      fopts.latency = std::make_unique<sim::UniformLatency>(2'000, 15'000);
      fopts.record_history = false;
      causal::SimCluster full(causal::Algorithm::kOptTrack,
                              causal::ReplicaMap::full(spec.sites, q),
                              std::move(fopts));
      full.run_program(w.program);

      const auto pm = partial.metrics();
      table.row();
      table.cell(locality, 2);
      table.cell(pm.messages_total());
      table.cell(pm.remote_reads);
      table.cell(pm.reads);
      table.cell(static_cast<double>(pm.messages_total()) /
                     static_cast<double>(full.metrics().messages_total()),
                 2);
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: at HDFS-like locality (0.95) partial\n"
                 "replication needs a fraction of full replication's\n"
                 "messages — the paper's §V Hadoop argument.\n";
  }

  std::cout << "\n-- A2: replication-factor sweep, uniform workload, n=6 --\n";
  {
    util::Table table({"p", "messages", "ctrl KB", "remote read frac",
                       "read p99 us"});
    for (const std::uint32_t p : {1u, 2u, 3u, 4u, 5u, 6u}) {
      bench::RunConfig cfg;
      cfg.alg = causal::Algorithm::kOptTrack;
      cfg.n = 6;
      cfg.q = 60;
      cfg.p = p;
      cfg.workload.ops_per_site = 500;
      cfg.workload.write_rate = 0.3;
      cfg.workload.locality = 0.5;
      cfg.workload.seed = 6;
      const auto r = bench::run_workload(std::move(cfg));
      table.row();
      table.cell(static_cast<std::uint64_t>(p));
      table.cell(r.metrics.messages_total());
      table.cell(static_cast<double>(r.metrics.control_bytes) / 1024.0, 1);
      table.cell(r.metrics.reads
                     ? static_cast<double>(r.metrics.remote_reads) /
                           static_cast<double>(r.metrics.reads)
                     : 0.0,
                 3);
      table.cell(r.metrics.read_latency_us.percentile(0.99), 0);
    }
    table.print(std::cout);
  }
  return 0;
}
