// Experiment E8 + ablation A2 — the paper's §I motivating scenario: user
// data pinned to its home region. Compares locality-aware partial
// replication against full replication on the social-network workload
// (messages, bytes, read latency), then sweeps the replication factor p on
// a locality-controlled uniform workload.
#include "bench_common.hpp"

#include <iostream>
#include <memory>

#include "server/topology.hpp"
#include "workload/hdfs.hpp"
#include "workload/social.hpp"

using namespace ccpr;

namespace {

struct SocialRow {
  std::uint64_t messages;
  std::uint64_t bytes;
  double remote_read_frac;
  double read_p50_us;
  double read_p99_us;
};

struct SocialParams {
  std::uint64_t ops_per_site;
  std::uint64_t seed;
};

/// The same geo shape every social run uses, expressed as the config
/// layer's Topology so the sim's latency model and the replica map's
/// proximity routing both derive from one description: ~metro regions
/// (2ms one-way within) separated by a 50ms WAN link class.
server::Topology social_topology(
    const std::vector<std::uint32_t>& region_of_site) {
  server::Topology topo;
  std::uint32_t regions = 0;
  for (const std::uint32_t r : region_of_site) {
    regions = std::max(regions, r + 1);
  }
  for (std::uint32_t r = 0; r < regions; ++r) {
    topo.region_names.push_back("r" + std::to_string(r));
    topo.intra_us.push_back(2'000);
  }
  for (std::uint32_t a = 0; a < regions; ++a) {
    for (std::uint32_t b = a + 1; b < regions; ++b) {
      topo.links.push_back(server::Topology::Link{a, b, 50'000});
    }
  }
  topo.region_of_site = region_of_site;
  return topo;
}

workload::SocialSpec social_spec(const SocialParams& params) {
  workload::SocialSpec spec;
  spec.regions = 2;
  spec.sites_per_region = 3;
  spec.users = 120;
  spec.replicas_per_user = 3;
  spec.ops_per_site = params.ops_per_site;
  spec.write_rate = 0.25;
  spec.follow_local_prob = 0.9;
  spec.value_bytes = 256;
  spec.seed = params.seed;
  return spec;
}

SocialRow collect(causal::SimCluster& cluster) {
  const auto m = cluster.metrics();
  return SocialRow{
      m.messages_total(), m.bytes_total(),
      m.reads ? static_cast<double>(m.remote_reads) /
                    static_cast<double>(m.reads)
              : 0.0,
      m.read_latency_us.percentile(0.5), m.read_latency_us.percentile(0.99)};
}

SocialRow run_social(std::uint32_t replicas_per_user,
                     const SocialParams& params) {
  auto spec = social_spec(params);
  spec.replicas_per_user = replicas_per_user;
  auto sw = make_social_workload(spec);

  causal::SimCluster::Options opts;
  // Two regions ~ Chicago + US West: 2ms within a region, 50ms across.
  opts.latency = social_topology(sw.region_of_site).make_latency(0.1);
  opts.latency_seed = 5;
  opts.mean_think_us = 2'000;
  opts.record_history = false;

  causal::SimCluster cluster(causal::Algorithm::kOptTrack, std::move(sw.rmap),
                             std::move(opts));
  cluster.run_program(sw.program);
  return collect(cluster);
}

SocialRow run_social_full(const SocialParams& params) {
  // Same workload but every wall replicated at all 6 sites.
  auto sw = make_social_workload(social_spec(params));

  causal::SimCluster::Options opts;
  opts.latency = social_topology(sw.region_of_site).make_latency(0.1);
  opts.latency_seed = 5;
  opts.mean_think_us = 2'000;
  opts.record_history = false;

  causal::SimCluster cluster(
      causal::Algorithm::kOptTrack,
      causal::ReplicaMap::full(sw.rmap.sites(), sw.rmap.vars()),
      std::move(opts));
  cluster.run_program(sw.program);
  return collect(cluster);
}

/// E8b: same workload and geo latency, varying only what the topology
/// drives — the placement policy (ring vs home-region) and whether the
/// replica map carries the topology's distance matrix (proximity-aware
/// fetch routing vs classic ring-distance targets).
SocialRow run_social_geo(bool region_placement, bool proximity_routing,
                         const SocialParams& params) {
  const auto spec = social_spec(params);
  auto sw = make_social_workload(spec);
  const auto topo = social_topology(sw.region_of_site);

  causal::ReplicaMap rmap =
      region_placement
          ? std::move(sw.rmap)
          : causal::ReplicaMap::even(
                static_cast<std::uint32_t>(sw.region_of_site.size()),
                spec.users, spec.replicas_per_user);
  if (proximity_routing) {
    rmap.set_site_distances(topo.site_distance_matrix());
  }

  causal::SimCluster::Options opts;
  opts.latency = topo.make_latency(0.1);
  opts.latency_seed = 5;
  opts.mean_think_us = 2'000;
  opts.record_history = false;

  causal::SimCluster cluster(causal::Algorithm::kOptTrack, std::move(rmap),
                             std::move(opts));
  cluster.run_program(sw.program);
  return collect(cluster);
}

util::Json::Object social_json(const char* section, const std::string& label,
                               const SocialRow& row) {
  return {{"section", section},
          {"case", label},
          {"messages", row.messages},
          {"bytes", row.bytes},
          {"remote_read_frac", row.remote_read_frac},
          {"read_p50_us", row.read_p50_us},
          {"read_p99_us", row.read_p99_us}};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, "locality_case", 2026);
  bench::print_header(
      "E8 locality_case", "paper §I case for partial replication + §V",
      "Social-network workload: 2 regions x 3 sites, 120 users, walls\n"
      "pinned to the home region; 90% of reads are regional; 256B posts.");
  bench::JsonReporter report("locality_case", args);

  const SocialParams social{args.quick ? 200u : 600u, args.seed};

  {
    util::Table table({"placement", "messages", "KB total", "remote reads",
                       "read p50 us", "read p99 us"});
    for (const std::uint32_t p : {1u, 2u, 3u}) {
      const auto row = run_social(p, social);
      table.row();
      table.cell("home-region p=" + std::to_string(p));
      table.cell(row.messages);
      table.cell(static_cast<double>(row.bytes) / 1024.0, 0);
      table.cell(row.remote_read_frac, 3);
      table.cell(row.read_p50_us, 0);
      table.cell(row.read_p99_us, 0);
      report.add_row(
          social_json("placement", "home-region p=" + std::to_string(p), row));
    }
    const auto full = run_social_full(social);
    table.row();
    table.cell("full (p=6)");
    table.cell(full.messages);
    table.cell(static_cast<double>(full.bytes) / 1024.0, 0);
    table.cell(full.remote_read_frac, 3);
    table.cell(full.read_p50_us, 0);
    table.cell(full.read_p99_us, 0);
    report.add_row(social_json("placement", "full p=6", full));
    table.print(std::cout);
    std::cout
        << "\nExpected shape: home-region placement needs a fraction of the\n"
           "messages/bytes of full replication while read latency stays\n"
           "near-local (most reads are regional); the residual p99 is the\n"
           "cross-region follower traffic the paper's §I accepts.\n";
  }

  std::cout << "\n-- E8b: topology-aware placement + routing, before/after --\n";
  {
    util::Table table({"configuration", "messages", "remote reads",
                       "read p50 us", "read p99 us"});
    const struct {
      const char* name;
      bool region_placement;
      bool proximity_routing;
    } cases[] = {
        {"ring placement, ring routing (before)", false, false},
        {"ring placement, proximity routing", false, true},
        {"region placement, proximity routing (after)", true, true},
    };
    for (const auto& c : cases) {
      const auto row =
          run_social_geo(c.region_placement, c.proximity_routing, social);
      table.row();
      table.cell(c.name);
      table.cell(row.messages);
      table.cell(row.remote_read_frac, 3);
      table.cell(row.read_p50_us, 0);
      table.cell(row.read_p99_us, 0);
      report.add_row(social_json("geo_routing", c.name, row));
    }
    table.print(std::cout);
    std::cout
        << "\nExpected shape: with ring placement most walls straddle the\n"
           "regions, so reads pay the WAN; proximity routing alone already\n"
           "redirects fetches to same-region replicas when one exists, and\n"
           "home-region placement plus proximity routing keeps both the\n"
           "replicas and the fetch traffic regional (near-local p50).\n";
  }

  std::cout << "\n-- HDFS/MapReduce data-locality scenario (paper §V) --\n";
  {
    util::Table table({"locality", "messages", "remote reads", "reads",
                       "partial msgs vs full"});
    for (const double locality : {0.5, 0.75, 0.95}) {
      workload::HdfsSpec spec;
      spec.sites = 8;
      spec.blocks = 64;
      spec.replication = 3;
      spec.tasks_per_site = args.quick ? 25 : 60;
      spec.locality = locality;
      spec.seed = args.seed + 7;
      auto w = workload::make_hdfs_workload(spec);
      const auto q = w.rmap.vars();

      causal::SimCluster::Options popts;
      popts.latency = std::make_unique<sim::UniformLatency>(2'000, 15'000);
      popts.record_history = false;
      causal::SimCluster partial(causal::Algorithm::kOptTrack,
                                 std::move(w.rmap), std::move(popts));
      partial.run_program(w.program);

      causal::SimCluster::Options fopts;
      fopts.latency = std::make_unique<sim::UniformLatency>(2'000, 15'000);
      fopts.record_history = false;
      causal::SimCluster full(causal::Algorithm::kOptTrack,
                              causal::ReplicaMap::full(spec.sites, q),
                              std::move(fopts));
      full.run_program(w.program);

      const auto pm = partial.metrics();
      const double msgs_vs_full =
          static_cast<double>(pm.messages_total()) /
          static_cast<double>(full.metrics().messages_total());
      table.row();
      table.cell(locality, 2);
      table.cell(pm.messages_total());
      table.cell(pm.remote_reads);
      table.cell(pm.reads);
      table.cell(msgs_vs_full, 2);
      report.add_row({{"section", "hdfs"},
                      {"locality", locality},
                      {"messages", pm.messages_total()},
                      {"remote_reads", pm.remote_reads},
                      {"reads", pm.reads},
                      {"messages_vs_full", msgs_vs_full}});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: at HDFS-like locality (0.95) partial\n"
                 "replication needs a fraction of full replication's\n"
                 "messages — the paper's §V Hadoop argument.\n";
  }

  std::cout << "\n-- A2: replication-factor sweep, uniform workload, n=6 --\n";
  {
    util::Table table({"p", "messages", "ctrl KB", "remote read frac",
                       "read p99 us"});
    const auto p_grid = args.quick
                            ? std::vector<std::uint32_t>{1u, 3u, 6u}
                            : std::vector<std::uint32_t>{1u, 2u, 3u, 4u, 5u,
                                                         6u};
    for (const std::uint32_t p : p_grid) {
      bench::RunConfig cfg;
      cfg.alg = causal::Algorithm::kOptTrack;
      cfg.n = 6;
      cfg.q = 60;
      cfg.p = p;
      cfg.workload.ops_per_site = args.quick ? 200 : 500;
      cfg.workload.write_rate = 0.3;
      cfg.workload.locality = 0.5;
      cfg.workload.seed = args.seed + 6;
      const auto r = bench::run_workload(std::move(cfg));
      const double remote_frac =
          r.metrics.reads ? static_cast<double>(r.metrics.remote_reads) /
                                static_cast<double>(r.metrics.reads)
                          : 0.0;
      table.row();
      table.cell(static_cast<std::uint64_t>(p));
      table.cell(r.metrics.messages_total());
      table.cell(static_cast<double>(r.metrics.control_bytes) / 1024.0, 1);
      table.cell(remote_frac, 3);
      table.cell(r.metrics.read_latency_us.percentile(0.99), 0);
      report.add_row({{"section", "p_sweep"},
                      {"p", p},
                      {"messages", r.metrics.messages_total()},
                      {"ctrl_bytes", r.metrics.control_bytes},
                      {"remote_read_frac", remote_frac},
                      {"read_p99_us",
                       r.metrics.read_latency_us.percentile(0.99)}});
    }
    table.print(std::cout);
  }
  return report.write() ? 0 : 1;
}
