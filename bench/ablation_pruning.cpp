// Ablation A1 — the value of the KS pruning machinery inside Opt-Track:
// Condition 1 (forget own delivery), Condition 2 (causally later write to
// the same destination subsumes), the apply-vector gossip discharge, and the
// §III-B distributed-write mode. Each switch is toggled independently on a
// common workload.
#include "bench_common.hpp"

#include <iostream>

using namespace ccpr;

namespace {

struct Variant {
  const char* name;
  causal::ProtocolOptions opts;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, "ablation_pruning", 14);
  bench::print_header(
      "A1 ablation_pruning", "DESIGN.md ablation index",
      "Opt-Track metadata under pruning ablations (n=8, q=64, p=3,\n"
      "w_rate=0.4, 500 ops/site). 'baseline' = both conditions + gossip.");
  bench::JsonReporter report("ablation_pruning", args);

  const Variant variants[] = {
      {"baseline", {}},
      {"no cond1", {.prune_cond1 = false}},
      {"no cond2", {.prune_cond2 = false}},
      {"no cond1+2", {.prune_cond1 = false, .prune_cond2 = false}},
      {"distributed write", {.distribute_write = true}},
      {"paper merge (unsound)", {.aggressive_merge = true}},
  };

  util::Table table({"variant", "ctrl B/msg", "ctrl KB total",
                     "log mean", "log peak", "space peak B"});
  for (const Variant& v : variants) {
    bench::RunConfig cfg;
    cfg.alg = causal::Algorithm::kOptTrack;
    cfg.n = 8;
    cfg.q = 64;
    cfg.p = 3;
    cfg.protocol = v.opts;
    cfg.workload.ops_per_site = args.quick ? 200 : 500;
    cfg.workload.write_rate = 0.4;
    cfg.workload.seed = args.seed;
    const auto r = bench::run_workload(std::move(cfg));
    table.row();
    table.cell(v.name);
    table.cell(r.metrics.control_bytes_per_message(), 1);
    table.cell(static_cast<double>(r.metrics.control_bytes) / 1024.0, 1);
    table.cell(r.metrics.log_entries.samples().mean(), 2);
    table.cell(r.metrics.log_entries.peak());
    table.cell(r.metrics.meta_state_bytes.peak());
    report.add_row(
        {{"variant", v.name},
         {"ctrl_bytes_per_msg", r.metrics.control_bytes_per_message()},
         {"ctrl_bytes_total", r.metrics.control_bytes},
         {"mean_log_entries", r.metrics.log_entries.samples().mean()},
         {"peak_log_entries", r.metrics.log_entries.peak()},
         {"space_peak_bytes", r.metrics.meta_state_bytes.peak()}});
  }
  table.print(std::cout);
  std::cout
      << "\nExpected shape: disabling Condition 2 roughly doubles logs,\n"
         "bytes and space; Condition 1 matters less on this mix (gossip\n"
         "discharges most of what it would prune). The distributed write\n"
         "mode trades slightly larger messages for O(n^2) write time. The\n"
         "paper-verbatim merge runs without gossip and deletes obligations\n"
         "it cannot justify — it is not a valid size/correctness trade\n"
         "(see merge_defect_test).\n";
  return report.write() ? 0 : 1;
}
