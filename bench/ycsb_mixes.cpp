// Ablation A5 — the algorithms under the standard YCSB operation mixes.
// Ties the paper's abstract w_rate axis to familiar industrial workloads:
// YCSB-A (update-heavy) sits far above the partial-replication crossover,
// YCSB-B/C (read-mostly/read-only) below it.
#include "bench_common.hpp"

#include <iostream>
#include <memory>

#include "workload/ycsb.hpp"

using namespace ccpr;

namespace {

metrics::Metrics run_mix(causal::Algorithm alg, workload::YcsbMix mix,
                         std::uint32_t p, std::uint64_t ops,
                         std::uint64_t seed) {
  const std::uint32_t n = 10, q = 100;
  workload::WorkloadSpec base;
  base.ops_per_site = ops;
  base.value_bytes = 64;
  base.seed = seed;
  const auto rmap = causal::ReplicaMap::even(n, q, p);
  const auto program = workload::generate_ycsb(mix, base, rmap);

  causal::SimCluster::Options opts;
  opts.latency = std::make_unique<sim::UniformLatency>(10'000, 50'000);
  opts.latency_seed = 6;
  opts.record_history = false;
  causal::SimCluster cluster(alg, causal::ReplicaMap::even(n, q, p),
                             std::move(opts));
  cluster.run_program(program);
  return cluster.metrics();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, "ycsb_mixes", 515);
  bench::print_header(
      "A5 ycsb_mixes", "DESIGN.md ablation index",
      "Standard YCSB mixes on n=10, q=100 (zipf 0.99). Partial algorithms\n"
      "run p=3, full-replication algorithms p=10. YCSB-A is write-heavy\n"
      "(w_rate 0.5 >> crossover 0.167): partial replication should win on\n"
      "messages; YCSB-B/C are read-dominated: full replication should win.");
  bench::JsonReporter report("ycsb_mixes", args);

  const std::uint64_t ops_per_site = args.quick ? 150 : 400;
  const workload::YcsbMix mixes[] = {
      workload::YcsbMix::kA, workload::YcsbMix::kB, workload::YcsbMix::kC,
      workload::YcsbMix::kF};

  util::Table table({"mix", "OptTrack p=3 msgs", "OptTrack KB",
                     "CRP p=10 msgs", "CRP KB", "winner (msgs)"});
  for (const auto mix : mixes) {
    const auto partial = run_mix(causal::Algorithm::kOptTrack, mix, 3,
                                 ops_per_site, args.seed);
    const auto full = run_mix(causal::Algorithm::kOptTrackCRP, mix, 10,
                              ops_per_site, args.seed);
    table.row();
    table.cell(workload::ycsb_name(mix));
    table.cell(partial.messages_total());
    table.cell(static_cast<double>(partial.bytes_total()) / 1024.0, 0);
    table.cell(full.messages_total());
    table.cell(static_cast<double>(full.bytes_total()) / 1024.0, 0);
    table.cell(partial.messages_total() < full.messages_total() ? "partial"
                                                                : "full");
    report.add_row(
        {{"mix", workload::ycsb_name(mix)},
         {"partial_messages", partial.messages_total()},
         {"partial_bytes", partial.bytes_total()},
         {"full_messages", full.messages_total()},
         {"full_bytes", full.bytes_total()},
         {"winner", partial.messages_total() < full.messages_total()
                        ? "partial"
                        : "full"}});
  }
  table.print(std::cout);
  std::cout
      << "\nExpected shape: partial wins YCSB-A and YCSB-F (write-heavy),\n"
         "full replication wins YCSB-B and trivially YCSB-C (no writes,\n"
         "so partial pays remote-read messages for nothing).\n";
  return report.write() ? 0 : 1;
}
