// Experiment E6 — §III-C / §V head-to-head: Opt-Track-CRP vs OptP (Baldoni
// et al.) under full replication. The paper claims CRP wins on message size,
// op time, and space because log entries are 2-tuples, the log resets on
// every write (length d = reads since the last local write), and no n-entry
// vector is shipped. Sweeps n and w_rate; also reports the mean log length
// d to show it stays far below n for write-heavy mixes.
#include "bench_common.hpp"

#include <iostream>

using namespace ccpr;

namespace {

struct Row {
  double ctrl_bytes_per_msg;
  std::uint64_t space_peak;
  double mean_log;
};

Row measure(causal::Algorithm alg, std::uint32_t n, double w_rate,
            std::uint64_t ops, std::uint64_t seed) {
  bench::RunConfig cfg;
  cfg.alg = alg;
  cfg.n = n;
  cfg.q = 64;
  cfg.p = n;
  cfg.workload.ops_per_site = ops;
  cfg.workload.write_rate = w_rate;
  cfg.workload.seed = seed;
  const auto r = bench::run_workload(std::move(cfg));
  return Row{r.metrics.control_bytes_per_message(),
             r.metrics.meta_state_bytes.peak(),
             r.metrics.log_entries.samples().mean()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, "crp_vs_optp", 31);
  bench::print_header(
      "E6 crp_vs_optp", "paper §III-C, Table I last two columns",
      "Opt-Track-CRP vs OptP under full replication (q=64, 400 ops/site).");
  bench::JsonReporter report("crp_vs_optp", args);

  const std::uint64_t ops_per_site = args.quick ? 150 : 400;
  const auto n_grid = args.quick ? std::vector<std::uint32_t>{5u, 10u}
                                 : std::vector<std::uint32_t>{5u, 10u, 20u};
  const auto w_grid = args.quick
                          ? std::vector<double>{0.1, 0.5, 0.9}
                          : std::vector<double>{0.1, 0.3, 0.5, 0.7, 0.9};

  util::Table table({"n", "w_rate", "CRP B/msg", "OptP B/msg", "CRP peakB",
                     "OptP peakB", "CRP mean d", "OptP log"});
  for (const std::uint32_t n : n_grid) {
    for (const double w : w_grid) {
      const Row crp = measure(causal::Algorithm::kOptTrackCRP, n, w,
                              ops_per_site, args.seed);
      const Row optp =
          measure(causal::Algorithm::kOptP, n, w, ops_per_site, args.seed);
      table.row();
      table.cell(static_cast<std::uint64_t>(n));
      table.cell(w, 1);
      table.cell(crp.ctrl_bytes_per_msg, 1);
      table.cell(optp.ctrl_bytes_per_msg, 1);
      table.cell(crp.space_peak);
      table.cell(optp.space_peak);
      table.cell(crp.mean_log, 2);
      table.cell(optp.mean_log, 1);
      for (const auto& [alg, row] :
           {std::pair{causal::Algorithm::kOptTrackCRP, &crp},
            std::pair{causal::Algorithm::kOptP, &optp}}) {
        report.add_row({{"n", n},
                        {"w_rate", w},
                        {"alg", causal::algorithm_token(alg)},
                        {"ctrl_bytes_per_msg", row->ctrl_bytes_per_msg},
                        {"space_peak_bytes", row->space_peak},
                        {"mean_log_entries", row->mean_log}});
      }
    }
  }
  table.print(std::cout);
  std::cout
      << "\nExpected shape: CRP bytes/msg roughly flat in n and shrinking\n"
         "as w_rate grows (the log resets on every write, so d falls);\n"
         "OptP bytes/msg grows linearly with n regardless of w_rate.\n"
         "CRP peak space tracks max(n,q); OptP tracks n*q.\n";
  return report.write() ? 0 : 1;
}
