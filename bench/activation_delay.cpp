// Experiment E7 — §II-C / §V optimality of the activation predicate:
// A_OPT (Full-Track, merge at read under ->co) vs A_ORG (Ahamad, merge at
// receipt under happened-before). False causality makes A_ORG hold updates
// for writes the application never observed; the apply-delay distribution
// and the pending-buffer depth quantify it. Full replication isolates the
// predicate (no remote reads).
#include "bench_common.hpp"

#include <iostream>
#include <memory>

using namespace ccpr;

namespace {

struct DelayRow {
  double p50, p99, max_us;
  std::uint64_t pending_peak;
};

DelayRow measure(causal::Algorithm alg, double write_rate, double sigma,
                 std::uint64_t seed, std::uint64_t ops) {
  bench::RunConfig cfg;
  cfg.alg = alg;
  cfg.n = 8;
  cfg.q = 64;
  cfg.p = 8;
  cfg.workload.ops_per_site = ops;
  cfg.workload.write_rate = write_rate;
  cfg.workload.dist = workload::WorkloadSpec::KeyDist::kZipf;
  cfg.workload.zipf_theta = 0.9;
  cfg.workload.seed = seed;
  cfg.latency = std::make_unique<sim::LogNormalLatency>(30'000.0, sigma);
  cfg.latency_seed = seed + 1;
  cfg.mean_think_us = 3'000;
  const auto r = bench::run_workload(std::move(cfg));
  return DelayRow{r.metrics.apply_delay_us.percentile(0.5),
                  r.metrics.apply_delay_us.percentile(0.99),
                  r.metrics.apply_delay_us.max(),
                  r.metrics.pending_peak};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, "activation_delay", 77);
  bench::print_header(
      "E7 activation_delay", "paper §II-C optimal activation predicate",
      "Apply delay (receipt -> activation) in microseconds, n=8 fully\n"
      "replicated, zipf(0.9), log-normal WAN latency (median 30ms).\n"
      "A_OPT = Full-Track; A_ORG = Ahamad et al. (merge at receipt).");
  bench::JsonReporter report("activation_delay", args);

  const std::uint64_t ops_per_site = args.quick ? 150 : 400;
  const auto w_grid = args.quick ? std::vector<double>{0.2, 0.8}
                                 : std::vector<double>{0.2, 0.5, 0.8};
  util::Table table({"w_rate", "lat sigma", "A_OPT p50", "A_ORG p50",
                     "A_OPT p99", "A_ORG p99", "A_OPT maxQ", "A_ORG maxQ"});
  for (const double w : w_grid) {
    for (const double sigma : {0.3, 0.9}) {
      const DelayRow opt = measure(causal::Algorithm::kFullTrack, w, sigma,
                                   args.seed, ops_per_site);
      const DelayRow org = measure(causal::Algorithm::kAhamad, w, sigma,
                                   args.seed, ops_per_site);
      table.row();
      table.cell(w, 1);
      table.cell(sigma, 1);
      table.cell(opt.p50, 0);
      table.cell(org.p50, 0);
      table.cell(opt.p99, 0);
      table.cell(org.p99, 0);
      table.cell(opt.pending_peak);
      table.cell(org.pending_peak);
      for (const auto& [name, row] : {std::pair{"full-track", &opt},
                                      std::pair{"ahamad", &org}}) {
        report.add_row({{"w_rate", w},
                        {"lat_sigma", sigma},
                        {"alg", name},
                        {"apply_p50_us", row->p50},
                        {"apply_p99_us", row->p99},
                        {"apply_max_us", row->max_us},
                        {"pending_peak", row->pending_peak}});
      }
    }
  }
  table.print(std::cout);
  std::cout
      << "\nExpected shape: identical transport randomness, but A_ORG's\n"
         "false causality inflates p99 apply delay and the pending-buffer\n"
         "peak, increasingly so at higher write rates and latency variance.\n";
  return report.write() ? 0 : 1;
}
