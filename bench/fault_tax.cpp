// Ablation A6 — the price of the paper's channel assumption:
// the paper assumes reliable FIFO channels for free; over a real lossy
// network that guarantee costs acks, retransmissions and latency. This
// bench quantifies the reliability tax of ReliableChannelTransport as the
// loss rate grows, with the causal algorithm running unchanged on top.
#include "bench_common.hpp"

#include <iostream>
#include <memory>

using namespace ccpr;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, "fault_tax", 77);
  bench::print_header(
      "A6 fault_tax", "paper §II-B channel assumption",
      "Opt-Track (n=6, q=48, p=2, w_rate=0.4, 300 ops/site) over a lossy\n"
      "datagram network with the reliable-channel layer stacked in.\n"
      "datagrams = messages on the wire incl. acks + retransmits.");
  bench::JsonReporter report("fault_tax", args);

  util::Table table({"drop rate", "datagrams", "x vs 0%", "retransmits",
                     "apply p99 (ms)", "read p99 (ms)"});
  double baseline = 0.0;
  const auto drops = args.quick
                         ? std::vector<double>{0.0, 0.1, 0.3}
                         : std::vector<double>{0.0, 0.05, 0.1, 0.2, 0.3};
  for (const double drop : drops) {
    // Build the cluster manually to inject faults.
    workload::WorkloadSpec spec;
    spec.ops_per_site = args.quick ? 150 : 300;
    spec.write_rate = 0.4;
    spec.seed = args.seed;
    const auto rmap = causal::ReplicaMap::even(6, 48, 2);
    const auto program = workload::generate_program(spec, rmap);

    causal::SimCluster::Options opts;
    opts.latency = std::make_unique<sim::UniformLatency>(5'000, 30'000);
    opts.latency_seed = 3;
    opts.record_history = false;
    if (drop > 0.0) {
      opts.drop_rate = drop;
      opts.fault_seed = 99;
    }
    causal::SimCluster cluster(causal::Algorithm::kOptTrack,
                               causal::ReplicaMap::even(6, 48, 2),
                               std::move(opts));
    cluster.run_program(program);
    const auto m = cluster.metrics();
    const auto datagrams = static_cast<double>(m.messages_total());
    if (drop == 0.0) baseline = datagrams;
    table.row();
    table.cell(drop, 2);
    table.cell(m.messages_total());
    table.cell(datagrams / baseline, 2);
    table.cell(cluster.retransmissions());
    table.cell(m.apply_delay_us.percentile(0.99) / 1000.0, 1);
    table.cell(m.read_latency_us.percentile(0.99) / 1000.0, 1);
    report.add_row({{"drop_rate", drop},
                    {"datagrams", m.messages_total()},
                    {"datagram_ratio", datagrams / baseline},
                    {"retransmissions", cluster.retransmissions()},
                    {"apply_p99_ms", m.apply_delay_us.percentile(0.99) / 1000.0},
                    {"read_p99_ms", m.read_latency_us.percentile(0.99) / 1000.0}});
  }
  table.print(std::cout);
  std::cout
      << "\nExpected shape: the 0.00 row runs WITHOUT the reliability layer\n"
         "(the paper's free assumption); stacking it roughly doubles the\n"
         "datagrams (one ack per data frame) and retransmissions grow with\n"
         "loss. Causal consistency is unaffected (see\n"
         "tests/fault_injection_test.cpp) but read tail latency inherits\n"
         "the retransmit timeout.\n";
  return report.write() ? 0 : 1;
}
