// Ablation A7 — does anything fall over at larger cluster sizes? Sweeps n
// up to 64 sites and reports wall-clock simulation throughput alongside
// the protocol metrics, so regressions in either the algorithms or the
// simulator itself show up here first.
#include "bench_common.hpp"

#include <chrono>
#include <iostream>

using namespace ccpr;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, "scale_sweep", 11);
  bench::print_header(
      "A7 scale_sweep", "engineering scalability check",
      "Opt-Track (p=3) and Opt-Track-CRP (p=n) as n grows; q=4n,\n"
      "w_rate=0.4, 200 ops/site. events/s is simulator wall-clock\n"
      "throughput on this machine.");
  bench::JsonReporter report("scale_sweep", args);

  const auto n_grid = args.quick ? std::vector<std::uint32_t>{8u, 16u}
                                 : std::vector<std::uint32_t>{8u, 16u, 32u,
                                                              64u};
  util::Table table({"alg", "n", "messages", "ctrl B/msg", "sim events",
                     "wall ms", "events/s"});
  for (const bool partial : {true, false}) {
    for (const std::uint32_t n : n_grid) {
      bench::RunConfig cfg;
      cfg.alg = partial ? causal::Algorithm::kOptTrack
                        : causal::Algorithm::kOptTrackCRP;
      cfg.n = n;
      cfg.q = 4 * n;
      cfg.p = partial ? 3 : n;
      cfg.workload.ops_per_site = args.quick ? 100 : 200;
      cfg.workload.write_rate = 0.4;
      cfg.workload.seed = args.seed;
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = bench::run_workload(std::move(cfg));
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      const double events_per_s =
          static_cast<double>(r.events) / (wall_ms / 1000.0);
      table.row();
      table.cell(partial ? "Opt-Track p=3" : "CRP p=n");
      table.cell(static_cast<std::uint64_t>(n));
      table.cell(r.metrics.messages_total());
      table.cell(r.metrics.control_bytes_per_message(), 1);
      table.cell(r.events);
      table.cell(wall_ms, 0);
      table.cell(events_per_s, 0);
      report.add_row({{"alg", partial ? "opt-track" : "crp"},
                      {"p_mode", partial ? "p3" : "pn"},
                      {"n", n},
                      {"messages", r.metrics.messages_total()},
                      {"ctrl_bytes_per_msg",
                       r.metrics.control_bytes_per_message()},
                      {"sim_events", r.events},
                      {"wall_ms", wall_ms},
                      {"events_per_s", events_per_s}});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: events grow ~linearly for Opt-Track (p\n"
               "fixed) and ~quadratically for full replication; events/s\n"
               "should stay in the same order of magnitude throughout.\n";
  return report.write() ? 0 : 1;
}
