// Ablation A7 — does anything fall over at larger cluster sizes? Sweeps n
// up to 64 sites and reports wall-clock simulation throughput alongside
// the protocol metrics, so regressions in either the algorithms or the
// simulator itself show up here first.
#include "bench_common.hpp"

#include <chrono>
#include <iostream>

using namespace ccpr;

int main() {
  bench::print_header(
      "A7 scale_sweep", "engineering scalability check",
      "Opt-Track (p=3) and Opt-Track-CRP (p=n) as n grows; q=4n,\n"
      "w_rate=0.4, 200 ops/site. events/s is simulator wall-clock\n"
      "throughput on this machine.");

  util::Table table({"alg", "n", "messages", "ctrl B/msg", "sim events",
                     "wall ms", "events/s"});
  for (const bool partial : {true, false}) {
    for (const std::uint32_t n : {8u, 16u, 32u, 64u}) {
      bench::RunConfig cfg;
      cfg.alg = partial ? causal::Algorithm::kOptTrack
                        : causal::Algorithm::kOptTrackCRP;
      cfg.n = n;
      cfg.q = 4 * n;
      cfg.p = partial ? 3 : n;
      cfg.workload.ops_per_site = 200;
      cfg.workload.write_rate = 0.4;
      cfg.workload.seed = 11;
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = bench::run_workload(std::move(cfg));
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      table.row();
      table.cell(partial ? "Opt-Track p=3" : "CRP p=n");
      table.cell(static_cast<std::uint64_t>(n));
      table.cell(r.metrics.messages_total());
      table.cell(r.metrics.control_bytes_per_message(), 1);
      table.cell(r.events);
      table.cell(wall_ms, 0);
      table.cell(static_cast<double>(r.events) / (wall_ms / 1000.0), 0);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: events grow ~linearly for Opt-Track (p\n"
               "fixed) and ~quadratically for full replication; events/s\n"
               "should stay in the same order of magnitude throughout.\n";
  return 0;
}
