// Shard-scaling sweep: apply throughput and put latency of one TCP site
// vs engine-shard count × concurrent client sessions.
//
//   build/bench/shard_scale [--quick] [--out=BENCH_shard_scale.json]
//
// Every cell boots a 2-site in-process loopback cluster with
// engine-shards = S, pins C client sessions (one thread each) to site 0
// and hammers puts over a keyspace wide enough to spread across every
// shard. Since each put is admitted, applied and acked by site 0's apply
// path, aggregate put throughput *is* the site's apply throughput — the
// number the per-shard engine split exists to scale. Reported per cell:
//
//   * aggregate put throughput (ops/s) and per-put latency p50/p99,
//   * per-shard apply (write) counts from the kEngineStat admin op — the
//     spread is the evidence that ShardMap actually distributed the load,
//   * cross-shard envelope gauges (parked/malformed) — both should be
//     tiny/zero on a healthy loopback run.
//
// --quick trims the grid to {1, 4} shards × one client count so CI can
// assert the snapshot's shape on every push; the full grid sweeps
// {1, 2, 4, 8} shards × {4, 16} clients for the scaling curve in
// EXPERIMENTS.md. Output is one JSON document, BENCH_shard_scale.json by
// default, uploaded by CI next to the other BENCH_*.json snapshots.
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "net/socket.hpp"
#include "server/cluster_config.hpp"
#include "server/site_server.hpp"
#include "util/rng.hpp"

using namespace ccpr;

namespace {

struct CellResult {
  std::uint32_t shards = 0;
  std::uint32_t clients = 0;
  std::uint64_t puts = 0;
  double put_ops_per_s = 0.0;
  double put_p50_us = 0.0;
  double put_p99_us = 0.0;
  std::vector<std::uint64_t> shard_writes;  // site 0, per shard
  std::uint64_t parked_envelopes = 0;
  std::uint64_t malformed_envelopes = 0;
};

double percentile_us(std::vector<double>& us, double p) {
  if (us.empty()) return 0.0;
  std::sort(us.begin(), us.end());
  return us[static_cast<std::size_t>(p * static_cast<double>(us.size() - 1))];
}

CellResult run_cell(std::uint32_t shards, std::uint32_t clients,
                    std::uint32_t ops_per_client, std::uint64_t seed) {
  const std::uint32_t n = 2, q = 4096, p = 2;
  auto cfg = server::ClusterConfig::loopback(n, q, p, 0);
  {
    // Bind ephemeral listeners first so concurrent bench runs never race
    // on fixed ports; the sockets close when `held` goes out of scope.
    std::vector<net::Socket> held;
    for (std::uint32_t s = 0; s < 2 * n; ++s) {
      std::uint16_t port = 0;
      held.push_back(net::tcp_listen("127.0.0.1", 0, &port));
      if (s < n) {
        cfg.sites[s].peer_port = port;
      } else {
        cfg.sites[s - n].client_port = port;
      }
    }
  }
  cfg.protocol.engine_shards = shards;

  std::vector<std::unique_ptr<server::SiteServer>> servers;
  for (causal::SiteId s = 0; s < n; ++s) {
    servers.push_back(std::make_unique<server::SiteServer>(cfg, s));
    if (!servers.back()->start()) {
      std::fprintf(stderr, "shard_scale: site %u failed to start\n", s);
      std::exit(1);
    }
  }

  // One warm session per thread, created before the clock starts so
  // connect cost stays out of the throughput window.
  std::vector<std::unique_ptr<client::Client>> sessions;
  for (std::uint32_t c = 0; c < clients; ++c) {
    sessions.push_back(std::make_unique<client::Client>(cfg, 0));
  }

  std::vector<std::vector<double>> lat_us(clients);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      util::Rng rng(seed + c * 977 + shards);
      auto& lats = lat_us[c];
      lats.reserve(ops_per_client);
      std::string value(64, 'v');
      for (std::uint32_t i = 0; i < ops_per_client; ++i) {
        const auto x = static_cast<causal::VarId>(rng.below(q));
        const auto op0 = std::chrono::steady_clock::now();
        sessions[c]->put(x, value);
        lats.push_back(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - op0)
                           .count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

  CellResult r;
  r.shards = shards;
  r.clients = clients;
  r.puts = static_cast<std::uint64_t>(clients) * ops_per_client;
  r.put_ops_per_s = static_cast<double>(r.puts) / dt;
  std::vector<double> all;
  for (auto& v : lat_us) all.insert(all.end(), v.begin(), v.end());
  r.put_p50_us = percentile_us(all, 0.5);
  r.put_p99_us = percentile_us(all, 0.99);

  const client::EngineStat es = sessions[0]->engine_stat();
  for (const auto& sh : es.shards) r.shard_writes.push_back(sh.writes);
  r.parked_envelopes = es.parked_envelopes;
  r.malformed_envelopes = es.malformed_envelopes;

  sessions.clear();
  for (auto& s : servers) s->stop();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, "shard_scale", 0xbe9cull,
                                       "BENCH_shard_scale.json");
  bench::JsonReporter report("shard_scale", args);

  const std::vector<std::uint32_t> shard_counts =
      args.quick ? std::vector<std::uint32_t>{1, 4}
                 : std::vector<std::uint32_t>{1, 2, 4, 8};
  const std::vector<std::uint32_t> client_counts =
      args.quick ? std::vector<std::uint32_t>{8}
                 : std::vector<std::uint32_t>{4, 16};
  const std::uint32_t ops_per_client = args.quick ? 400 : 1500;

  for (const std::uint32_t shards : shard_counts) {
    for (const std::uint32_t clients : client_counts) {
      const auto r = run_cell(shards, clients, ops_per_client, args.seed);
      std::printf(
          "shards=%-2u clients=%-3u puts=%-6llu put=%.1fk/s p50=%.0fus "
          "p99=%.0fus parked=%llu\n",
          r.shards, r.clients, static_cast<unsigned long long>(r.puts),
          r.put_ops_per_s / 1e3, r.put_p50_us, r.put_p99_us,
          static_cast<unsigned long long>(r.parked_envelopes));
      util::Json::Array shard_writes;
      for (const std::uint64_t w : r.shard_writes) shard_writes.push_back(w);
      report.add_row({{"shards", r.shards},
                      {"clients", r.clients},
                      {"puts", r.puts},
                      {"put_ops_per_s", r.put_ops_per_s},
                      {"put_p50_us", r.put_p50_us},
                      {"put_p99_us", r.put_p99_us},
                      {"parked_envelopes", r.parked_envelopes},
                      {"malformed_envelopes", r.malformed_envelopes},
                      {"shard_writes", std::move(shard_writes)}});
    }
  }
  return report.write() ? 0 : 1;
}
